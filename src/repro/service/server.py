"""JSON-over-HTTP serving of tip-index artifacts (stdlib only).

Two layers:

* :class:`TipService` — transport-free request handling: route + params in,
  JSON-able dict out, :class:`~repro.errors.ServiceError` (with an HTTP
  status) on bad input.  The offline ``repro query`` command calls this
  directly, which is what guarantees its answers are byte-identical to the
  HTTP API's.
* :func:`create_server` / :func:`serve` — a ``ThreadingHTTPServer`` whose
  handler parses the request, delegates to the shared service, and
  serializes the response.  Indexes are immutable and the cache is
  thread-safe, so concurrent handler threads need no further locking.
  Speaks HTTP/1.1 with keep-alive (every response carries an exact
  ``Content-Length``).  The alternative event-loop transport lives in
  :mod:`repro.service.aserver`; both answer byte-for-byte identically
  because both route through :meth:`TipService.handle`.

Endpoints (all JSON)::

    GET  /healthz                          liveness + served artifact names
    GET  /metrics                          Prometheus text exposition (0.0.4)
    GET  /stats[?histogram=1]              cache metrics, per-artifact summaries
    GET  /theta?vertex=V                   point θ lookup
    GET  /theta/batch?vertices=1,2,3       batched θ lookup
    POST /theta/batch   {"vertices": [..]} batched θ lookup (large batches)
    GET  /top-k?k=K                        K highest-θ vertices
    GET  /k-tip?k=K[&limit=L]              members of the union of k-tips
    GET  /community?k=K[&vertex=V]         butterfly-connected k-tips (Sec. 6)
    POST /update {"insert": [[u,v],..],    apply an edge-update batch: CSR
                  "delete": [[u,v],..]}    patch + incremental tip repair

Diagnostic (operator) routes — ``GET /slo``, ``GET /debug/memory``,
``GET /debug/profile`` — and, when replication is attached, the
replication plane (``GET /replication/status``, ``GET /replication/log``,
``POST /replication/apply``) ride the same dispatch; see
:data:`DIAGNOSTIC_ENDPOINTS`.

The service can also answer from **θ-range shards** instead of one
monolithic index: pass ``shards=N`` to scatter/gather over an in-memory
:class:`~repro.service.sharding.ShardRouter`, or serve a persisted shard
plan directory (``repro shard-plan``) directly — answers stay
bit-identical to the unsharded index either way.

``/update`` is the one write path: it routes the batch through the
streaming engine (:mod:`repro.streaming`), persists the refreshed artifact
with the usual atomic directory swap, and puts the repaired index straight
into the cache under its new fingerprint — readers keep answering from the
previous snapshot until that swap and are never blocked by a writer
(updates themselves serialize on a per-service lock).  ``/stats`` reports
the artifact's schema version, fingerprints and streaming staleness
counters so monitoring can watch the update stream.

Every endpoint takes an optional ``artifact=NAME`` parameter; it may be
omitted when a single artifact is being served.
"""

from __future__ import annotations

import json
import threading
import time
from collections import Counter
from contextlib import contextmanager
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from urllib.parse import parse_qs, urlsplit

import numpy as np

from ..errors import (
    DeadlineExceededError,
    ReproError,
    ServiceError,
    StreamingError,
)
from ..obs.log import log_request
from ..obs.memory import memory_snapshot, rss_bytes
from ..obs.metrics import BATCH_SIZE_BUCKETS, MetricRegistry
from ..obs.profile import (
    DEFAULT_INTERVAL_SECONDS,
    ProfileBusyError,
    collect_profile,
)
from ..obs.slo import DEFAULT_OBJECTIVES, SloMonitor, breaker_open_objective
from . import faults
from .artifacts import ARRAYS_FILENAME, read_manifest, save_artifact
from .cache import IndexCache
from .index import TipIndex
from .resilience import CircuitBreakerRegistry, Deadline
from .sharding import ShardRouter, is_shard_plan, read_shard_plan

__all__ = [
    "TipService",
    "create_server",
    "serve",
    "ENDPOINTS",
    "DIAGNOSTIC_ENDPOINTS",
    "DOCUMENTED_METRICS",
    "METRICS_CONTENT_TYPE",
    "error_payload",
    "parse_post_body",
]

#: The eight routes of the JSON API.
ENDPOINTS = (
    "/healthz",
    "/stats",
    "/theta",
    "/theta/batch",
    "/top-k",
    "/k-tip",
    "/community",
    "/update",
)

#: Deep-diagnostics routes.  Kept out of :data:`ENDPOINTS` on purpose:
#: that tuple is the *JSON API contract* the serving benchmarks compare
#: across transports and versions, while these are operator surfaces that
#: may grow or change shape between PRs.
DIAGNOSTIC_ENDPOINTS = (
    "/slo",
    "/debug/memory",
    "/debug/profile",
    "/replication/status",
    "/replication/log",
    "/replication/apply",
    "/replication/snapshot",
)

#: Routes that get their own label value in request metrics; everything
#: else collapses into ``<unknown>`` so scanners can't grow the label set.
#: ``/metrics`` is deliberately NOT in :data:`ENDPOINTS` (it is a transport
#: concern, not part of the JSON API contract the benchmarks compare).
_COUNTED_ROUTES = ENDPOINTS + DIAGNOSTIC_ENDPOINTS + ("/metrics",)

#: ``Content-Type`` of the Prometheus text exposition format 0.0.4.
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Every metric family ``GET /metrics`` exposes, on both transports.  The
#: observability smoke benchmark asserts each of these names appears in a
#: scrape; keep this list in sync with :meth:`TipService._init_metrics`
#: and the ARCHITECTURE.md observability section.
DOCUMENTED_METRICS = (
    "repro_http_requests_total",
    "repro_http_request_seconds",
    "repro_coalesce_batch_size",
    "repro_coalesce_wait_seconds",
    "repro_admission_queue_depth",
    "repro_admission_rejections_total",
    "repro_cache_hits_total",
    "repro_cache_misses_total",
    "repro_cache_evictions_total",
    "repro_cache_entries",
    "repro_cache_hit_ratio",
    "repro_service_requests_total",
    "repro_server_start_time_seconds",
    "repro_server_uptime_seconds",
    "repro_updates_applied_total",
    "repro_artifact_staleness_seconds",
    "repro_memory_rss_bytes",
    "repro_memory_tracemalloc_bytes",
    "repro_memory_workspace_bytes",
    "repro_memory_shm_bytes",
    "repro_memory_artifact_bytes",
    "repro_slo_burn_rate",
    "repro_slo_ok",
    "repro_replication_offset",
    "repro_replication_lag",
    "repro_replication_staleness_seconds",
    "repro_resilience_retries_total",
    "repro_resilience_breakers_open",
    "repro_resilience_breaker_open_seconds",
    "repro_resilience_resyncs_total",
    "repro_resilience_degraded_total",
    "repro_resilience_deadline_exceeded_total",
    "repro_faults_armed",
    "repro_faults_injected_total",
)


def metric_route(route: str) -> str:
    """Normalise a request path into a bounded metric label value."""
    return route if route in _COUNTED_ROUTES else "<unknown>"

#: Hard cap on one response's vertex payload; override per-request with a
#: smaller ``limit``.
MAX_RESPONSE_VERTICES = 100_000

#: Hard cap on the candidate set of a ``/community`` query: component
#: extraction is quadratic in the level's vertex count, so unboundedly low
#: ``k`` on a big index would pin a handler thread for minutes.
MAX_COMMUNITY_VERTICES = 10_000

#: Hard cap on a POST body; generous headroom over the largest JSON
#: encoding of a MAX_RESPONSE_VERTICES-sized batch.
MAX_REQUEST_BODY_BYTES = 8 * 1024 * 1024


def _flag_param(params: dict, key: str) -> bool:
    """Boolean query parameter: absent/empty/``0``/``false`` mean off."""
    value = str(params.get(key, "")).strip().lower()
    return value not in ("", "0", "false", "no")


def error_payload(error: Exception, *, status: int | None = None) -> dict:
    """Structured error body shared by every transport.

    Carries the message and the HTTP status; a :class:`ServiceOverloadedError`
    additionally surfaces its ``Retry-After`` hint so clients can back off
    without parsing headers.
    """
    resolved = int(status if status is not None else getattr(error, "status", 500))
    payload = {"error": str(error), "status": resolved}
    retry_after = getattr(error, "retry_after", None)
    if retry_after is not None:
        payload["retry_after_seconds"] = float(retry_after)
    return payload


def parse_post_body(raw: bytes) -> dict:
    """Decode a POST body into the JSON object :meth:`TipService.handle` takes.

    Shared by the threaded and async transports so malformed JSON and
    non-object bodies answer a structured 400 (:class:`ServiceError`)
    everywhere instead of a transport-specific 500.
    """
    if not raw:
        return {}
    try:
        body = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        raise ServiceError("request body is not valid JSON") from None
    if not isinstance(body, dict):
        raise ServiceError("request body must be a JSON object")
    return body


def to_jsonable(value):
    """Recursively convert numpy scalars/arrays into plain JSON types."""
    if isinstance(value, np.ndarray):
        if value.dtype != object:
            return value.tolist()  # one C-level call on the hot path
        return [to_jsonable(item) for item in value.tolist()]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, dict):
        return {str(key): to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(item) for item in value]
    return value


class TipService:
    """Transport-free request dispatch over one or more served artifacts.

    ``handle(route, params, body)`` is the whole contract: route + query
    params + optional JSON body in, JSON-able payload out, ``ServiceError``
    (carrying an HTTP status) on bad input.  Both HTTP transports and the
    offline ``repro query`` command call it, which is what keeps their
    answers byte-identical.  Serves plain ``*.tipidx`` artifacts, persisted
    shard plans, or in-memory θ-range shard views (``shards=N``), and
    optionally participates in leader/follower replication
    (:meth:`attach_replication`).
    """

    def __init__(
        self,
        artifact_paths,
        *,
        cache_capacity: int = 8,
        mmap: bool = True,
        shards: int | None = None,
    ):
        self.cache = IndexCache(cache_capacity)
        self.mmap = mmap
        if shards is not None and int(shards) < 1:
            raise ServiceError(f"shard count must be >= 1, got {shards}")
        self.shard_count = int(shards) if shards is not None else None
        # Persisted shard plans served directly: name -> loaded router.
        self._routers: dict[str, ShardRouter] = {}
        # In-memory shard views (shards=N): name -> (fingerprint, router),
        # rebuilt lazily whenever the underlying artifact's fingerprint
        # moves (i.e. after every applied /update).
        self._shard_views: dict[str, tuple[str, ShardRouter]] = {}
        # Replication coordinator, attached after construction (if at all).
        self.replication = None
        self.requests: Counter = Counter()
        self.update_modes: Counter = Counter()
        # Transport front ends (e.g. the async coalescing server) register
        # zero-argument metric providers here; /stats folds them in under a
        # "transport" key so the new layer is observable from day one.
        self.transport_metrics: dict = {}
        self.started_unix = time.time()
        self._started_monotonic = time.monotonic()
        self.registry = MetricRegistry()
        # Per-target circuit breakers (replication push/poll, shard gather)
        # and the degradation counters the resilience gauges read.
        self.breakers = CircuitBreakerRegistry()
        self.degraded_total = 0
        self.deadline_exceeded_total = 0
        # SLO monitoring reads the cumulative request instruments; it must
        # exist before _init_metrics so the per-objective gauges can be
        # instantiated eagerly (zero-valued from the first scrape).
        self.slo = SloMonitor(
            latency_source=self._latency_counts,
            availability_source=self._availability_counts,
            staleness_source=self._worst_staleness,
            objectives=DEFAULT_OBJECTIVES,
        )
        # Breaker-open objective: burns while any breaker stays open, fed by
        # the registry's oldest-open clock (a staleness-shaped signal).
        self.slo.add_objective(
            breaker_open_objective(),
            staleness_source=self.breakers.oldest_open_seconds)
        # Last stored deep-diagnostic payloads: ``?cached=1`` / ``?last=1``
        # return these verbatim, which is how the observability benchmark
        # asserts byte-identity of volatile payloads across transports.
        self._last_profile: dict | None = None
        self._last_memory: dict | None = None
        self._init_metrics()
        self._requests_lock = threading.Lock()
        # One writer at a time: /update batches serialize here while readers
        # keep answering from the previous snapshot.
        self._update_lock = threading.Lock()
        # Seqlock over artifact mutation: odd while an update is in flight.
        # The replication snapshot endpoint reads it to capture a consistent
        # artifact copy without ever taking the update lock (lock-free, so a
        # follower resync can never deadlock against a pushing leader).
        self._mutation_seq = 0
        self._artifacts: dict[str, Path] = {}
        for raw_path in artifact_paths:
            path = Path(raw_path)
            if is_shard_plan(path):
                # Shard plans load eagerly: fail at startup, and the
                # router's arrays are memmapped so this stays cheap.
                router = ShardRouter.load(path, mmap=self.mmap)
                name = router.name or path.name
            else:
                manifest = read_manifest(path)  # validates eagerly: fail at startup
                name = manifest.name
                router = None
            if name in self._artifacts:
                name = f"{name}#{len(self._artifacts)}"
            self._artifacts[name] = path
            if router is not None:
                self._routers[name] = router
        if not self._artifacts:
            raise ServiceError("no artifacts to serve", status=500)

    # ------------------------------------------------------------------
    # Artifact resolution
    # ------------------------------------------------------------------
    @property
    def artifact_names(self) -> list[str]:
        """Names of everything served (artifacts and shard plans alike)."""
        return list(self._artifacts)

    def artifact_path(self, name: str) -> Path:
        """Filesystem path of a served artifact or shard plan, by name."""
        path = self._artifacts.get(name)
        if path is None:
            raise ServiceError(
                f"unknown artifact {name!r} (serving: {', '.join(self._artifacts)})",
                status=404,
            )
        return path

    def attach_replication(self, coordinator) -> None:
        """Join a replication topology (called by the coordinator).

        Installs the coordinator for the ``/replication/*`` routes, the
        ``/update`` follower guard, the ``repro_replication_*`` gauges and
        the ``/stats`` section; on a follower, also registers the
        ``replication-staleness`` SLO objective backed by the
        coordinator's staleness signal.
        """
        self.replication = coordinator
        objective = coordinator.objective()
        if objective is not None:
            self.slo.add_objective(
                objective, staleness_source=coordinator.staleness_seconds)
            self._slo_burn_rate.labels(objective=objective.name).set(0.0)
            self._slo_ok.labels(objective=objective.name).set(1.0)

    def apply_replicated(self, artifact: str, body: dict) -> dict:
        """Apply one replicated record's batch, bypassing the follower guard.

        Only the replication coordinator calls this; ordering and
        fingerprint-chain checks happen there, the actual CSR patch + tip
        repair is the exact ``/update`` code path.
        """
        return self._apply_update(artifact, {}, body, replicated=True)

    def count_requests(self, route: str, n: int = 1) -> None:
        """Advance the per-route request counter (fast paths bypass handle)."""
        with self._requests_lock:
            self.requests[metric_route(route)] += n

    def count_degraded(self) -> None:
        """Note one request answered with a partial (``degraded: true``) payload."""
        with self._requests_lock:
            self.degraded_total += 1

    def count_deadline_exceeded(self) -> None:
        """Note one request failed outright on its ``deadline_ms`` budget."""
        with self._requests_lock:
            self.deadline_exceeded_total += 1

    def mutation_seq(self) -> int:
        """Artifact-mutation seqlock value (odd = an update is in flight)."""
        return self._mutation_seq

    @contextmanager
    def _mutating(self):
        """Hold the mutation seqlock odd for the duration of an update."""
        self._mutation_seq += 1
        try:
            yield
        finally:
            self._mutation_seq += 1

    def reload_artifact(self, name: str) -> None:
        """Drop every cached view of an artifact replaced on disk.

        The replication coordinator calls this after installing a leader
        snapshot over the artifact directory (a follower re-bootstrap):
        the cache entry, any in-memory shard view and the displaced index
        all described the *old* bytes.  The next read reloads and
        re-shards lazily from the new manifest.
        """
        self.artifact_path(name)  # 404 on unknown names
        self._shard_views.pop(name, None)
        self.cache.clear()

    # ------------------------------------------------------------------
    # Metrics (shared by both transports; see DOCUMENTED_METRICS)
    # ------------------------------------------------------------------
    def _init_metrics(self) -> None:
        """Create every documented instrument up front.

        Instantiating them here — rather than lazily on first use — is what
        guarantees a scrape on either transport renders the complete
        documented set (with zero values) from the very first request.
        """
        registry = self.registry
        self.http_requests_total = registry.counter(
            "repro_http_requests_total",
            "HTTP requests served, by transport, route and status.",
            labelnames=("transport", "route", "status"),
        )
        self.http_request_seconds = registry.histogram(
            "repro_http_request_seconds",
            "End-to-end request latency in seconds, by transport and route.",
            labelnames=("transport", "route"),
        )
        self.coalesce_batch_size = registry.histogram(
            "repro_coalesce_batch_size",
            "Point-theta requests coalesced into one vectorized gather.",
            buckets=BATCH_SIZE_BUCKETS,
        )
        self.coalesce_wait_seconds = registry.histogram(
            "repro_coalesce_wait_seconds",
            "Seconds a point-theta request waited in the coalescer queue.",
        )
        self._admission_queue_depth = registry.gauge(
            "repro_admission_queue_depth",
            "Updates admitted but not yet completed (async transport).",
        )
        self._admission_rejections = registry.gauge(
            "repro_admission_rejections_total",
            "Update batches rejected with 503 by admission control.",
        )
        self._cache_hits = registry.gauge(
            "repro_cache_hits_total", "Index cache hits since startup.")
        self._cache_misses = registry.gauge(
            "repro_cache_misses_total", "Index cache misses since startup.")
        self._cache_evictions = registry.gauge(
            "repro_cache_evictions_total", "Index cache LRU evictions since startup.")
        self._cache_entries = registry.gauge(
            "repro_cache_entries", "Indexes currently resident in the cache.")
        self._cache_hit_ratio = registry.gauge(
            "repro_cache_hit_ratio", "Index cache hit ratio in [0, 1].")
        self._service_requests = registry.gauge(
            "repro_service_requests_total",
            "Requests dispatched by the shared service, by route.",
            labelnames=("route",),
        )
        self._start_time = registry.gauge(
            "repro_server_start_time_seconds",
            "Unix time the service was constructed.",
        )
        self._uptime = registry.gauge(
            "repro_server_uptime_seconds", "Seconds since service construction.")
        self._updates_applied = registry.gauge(
            "repro_updates_applied_total",
            "Edge-update batches applied to the artifact, by artifact.",
            labelnames=("artifact",),
        )
        self._staleness = registry.gauge(
            "repro_artifact_staleness_seconds",
            "Seconds since the artifact was last built or updated, by artifact.",
            labelnames=("artifact",),
        )
        self._memory_rss = registry.gauge(
            "repro_memory_rss_bytes", "Resident set size of the serving process.")
        self._memory_tracemalloc = registry.gauge(
            "repro_memory_tracemalloc_bytes",
            "Python heap bytes currently traced by tracemalloc (0 when off).",
        )
        self._memory_workspace = registry.gauge(
            "repro_memory_workspace_bytes",
            "Bytes currently held by live wedge-workspace scratch arenas.",
        )
        self._memory_shm = registry.gauge(
            "repro_memory_shm_bytes",
            "Bytes of shared-memory segments this process currently owns.",
        )
        self._memory_artifact = registry.gauge(
            "repro_memory_artifact_bytes",
            "On-disk bytes of served artifact arrays (memmapped when loaded).",
        )
        self._slo_burn_rate = registry.gauge(
            "repro_slo_burn_rate",
            "Error-budget burn rate per objective (>1 means breached).",
            labelnames=("objective",),
        )
        self._slo_ok = registry.gauge(
            "repro_slo_ok",
            "1 while the objective holds (or has no data), 0 while breached.",
            labelnames=("objective",),
        )
        self._replication_offset = registry.gauge(
            "repro_replication_offset",
            "Newest replication-log offset this replica has applied "
            "(on the leader: appended).",
        )
        self._replication_lag = registry.gauge(
            "repro_replication_lag",
            "Log records this follower (on the leader: its laggiest "
            "follower) is behind the leader's head.",
        )
        self._replication_staleness = registry.gauge(
            "repro_replication_staleness_seconds",
            "Seconds since this follower last verified it matched the "
            "leader's log head (0 on the leader).",
        )
        self._resilience_retries = registry.gauge(
            "repro_resilience_retries_total",
            "Replication push/poll attempts retried after a retryable failure.",
        )
        self._resilience_breakers_open = registry.gauge(
            "repro_resilience_breakers_open",
            "Circuit breakers currently in the open state.",
        )
        self._resilience_breaker_open_seconds = registry.gauge(
            "repro_resilience_breaker_open_seconds",
            "Longest time any circuit breaker has currently been open.",
        )
        self._resilience_resyncs = registry.gauge(
            "repro_resilience_resyncs_total",
            "Follower snapshot re-bootstraps performed after divergence "
            "or log compaction (0 on the leader).",
        )
        self._resilience_degraded = registry.gauge(
            "repro_resilience_degraded_total",
            "Requests answered with a partial (degraded: true) payload "
            "because a deadline expired mid-gather.",
        )
        self._resilience_deadline_exceeded = registry.gauge(
            "repro_resilience_deadline_exceeded_total",
            "Requests failed with 503 because their deadline_ms budget "
            "expired before any answer existed.",
        )
        self._faults_armed = registry.gauge(
            "repro_faults_armed",
            "1 while a deterministic fault-injection plan is armed.",
        )
        self._faults_injected = registry.gauge(
            "repro_faults_injected_total",
            "Faults injected by the armed plan since it was installed.",
        )
        for objective in self.slo.objectives:
            self._slo_burn_rate.labels(objective=objective.name).set(0.0)
            self._slo_ok.labels(objective=objective.name).set(1.0)
        self._start_time.set(self.started_unix)
        registry.register_callback(self._collect_metrics)

    def _collect_metrics(self) -> None:
        """Scrape-time refresh of gauges whose sources live elsewhere."""
        self._uptime.set(time.monotonic() - self._started_monotonic)
        cache = self.cache.stats()
        self._cache_hits.set(cache["hits"])
        self._cache_misses.set(cache["misses"])
        self._cache_evictions.set(cache["evictions"])
        self._cache_entries.set(cache["entries"])
        self._cache_hit_ratio.set(cache["hit_rate"])
        with self._requests_lock:
            requests = dict(self.requests)
        for route, count in requests.items():
            self._service_requests.labels(route=route).set(count)
        # Admission metrics come from the async front end when present; the
        # threaded transport has no admission queue, so the zero defaults
        # from construction stand.
        provider = self.transport_metrics.get("updates")
        if provider is not None:
            updates = provider()
            self._admission_queue_depth.set(updates.get("pending", 0))
            self._admission_rejections.set(updates.get("admission_rejections", 0))
        now = time.time()
        for name, path in self._artifacts.items():
            try:
                manifest = self._read_manifest_retrying(path)
            except ReproError:
                continue  # mid-swap or corrupt; skip this artifact, not the scrape
            streaming = manifest.streaming
            self._updates_applied.labels(artifact=name).set(
                int(streaming.get("updates_applied", 0)))
            freshest = streaming.get("last_update_unix") or manifest.created_unix
            self._staleness.labels(artifact=name).set(max(0.0, now - float(freshest)))
        # Memory residency gauges refresh from cheap direct reads (no
        # tracemalloc snapshot: taking one per scrape when tracing would
        # cost more than the signal is worth).
        import tracemalloc

        from ..engine.shm import live_segment_stats
        from ..kernels.workspace import live_workspace_stats

        self._memory_rss.set(rss_bytes() or 0)
        self._memory_tracemalloc.set(
            tracemalloc.get_traced_memory()[0] if tracemalloc.is_tracing() else 0)
        self._memory_workspace.set(live_workspace_stats()["current_bytes"])
        self._memory_shm.set(live_segment_stats()["bytes"])
        self._memory_artifact.set(self._artifact_bytes_total())
        if self.replication is not None:
            offset, lag, staleness = self.replication.gauge_values()
            self._replication_offset.set(offset)
            self._replication_lag.set(lag)
            if staleness is not None:
                self._replication_staleness.set(staleness)
            self._resilience_retries.set(
                self.replication.retry_policy.stats()["retries_total"])
            self._resilience_resyncs.set(self.replication.resyncs)
        self._resilience_breakers_open.set(self.breakers.open_count())
        self._resilience_breaker_open_seconds.set(self.breakers.oldest_open_seconds())
        with self._requests_lock:
            self._resilience_degraded.set(self.degraded_total)
            self._resilience_deadline_exceeded.set(self.deadline_exceeded_total)
        fault_state = faults.metrics()
        self._faults_armed.set(1.0 if fault_state["armed"] else 0.0)
        self._faults_injected.set(fault_state["injected_total"])
        # The scrape drives periodic SLO evaluation (one snapshot per
        # scrape feeds the rolling windows).
        self.slo.evaluate()
        for objective, (burn, ok) in self.slo.burn_rates().items():
            self._slo_burn_rate.labels(objective=objective).set(burn)
            self._slo_ok.labels(objective=objective).set(1.0 if ok else 0.0)

    def metrics_text(self) -> str:
        """Render the registry in Prometheus text format (``GET /metrics``)."""
        return self.registry.render()

    # ------------------------------------------------------------------
    # SLO sources (cumulative reads over the request instruments)
    # ------------------------------------------------------------------
    def _latency_counts(self, threshold_seconds: float) -> tuple[int, int]:
        """(requests at or under the threshold, total) across all series.

        Diagnostic routes are excluded: the SLO promises cover the serving
        API, and ``/debug/profile?seconds=N`` blocks for N seconds *by
        design* — profiling a healthy instance must not degrade it.
        """
        good = 0
        total = 0
        for labels, child in self.http_request_seconds.children():
            if labels.get("route") in DIAGNOSTIC_ENDPOINTS:
                continue
            under, n = child.count_le(threshold_seconds)
            good += under
            total += n
        return good, total

    def _availability_counts(self) -> tuple[int, int]:
        """(5xx requests, total requests) across transports and routes.

        Diagnostic routes are excluded for the same reason as latency:
        objectives measure the serving API, not the operator plane.
        """
        errors = 0
        total = 0
        for labels, child in self.http_requests_total.children():
            if labels.get("route") in DIAGNOSTIC_ENDPOINTS:
                continue
            value = int(child.value())
            total += value
            if str(labels.get("status", "")).startswith("5"):
                errors += value
        return errors, total

    def _worst_staleness(self) -> float | None:
        """Largest current staleness across served artifacts, in seconds."""
        now = time.time()
        worst: float | None = None
        for path in self._artifacts.values():
            try:
                manifest = self._read_manifest_retrying(path)
            except ReproError:
                continue
            freshest = manifest.streaming.get("last_update_unix") or manifest.created_unix
            staleness = max(0.0, now - float(freshest))
            worst = staleness if worst is None else max(worst, staleness)
        return worst

    # ------------------------------------------------------------------
    # Memory telemetry (GET /debug/memory)
    # ------------------------------------------------------------------
    def _artifact_memory(self) -> dict:
        """Per-artifact array bytes (memmapped when loaded) + scratch peaks."""
        artifacts: dict = {}
        for name, path in self._artifacts.items():
            try:
                array_bytes = (path / ARRAYS_FILENAME).stat().st_size
            except OSError:
                array_bytes = 0
            entry: dict = {"array_bytes": int(array_bytes), "loaded": False,
                           "peak_scratch_bytes": None}
            try:
                manifest = self._read_manifest_retrying(path)
            except ReproError:
                pass
            else:
                entry["loaded"] = self.cache.peek(manifest.fingerprint)
                entry["peak_scratch_bytes"] = manifest.counters.get("peak_scratch_bytes")
            artifacts[name] = entry
        return artifacts

    def _artifact_bytes_total(self) -> int:
        total = 0
        for path in self._artifacts.values():
            try:
                total += (path / ARRAYS_FILENAME).stat().st_size
            except OSError:
                pass
        return total

    def _memory_payload(self, params: dict) -> dict:
        if _flag_param(params, "cached"):
            if self._last_memory is None:
                raise ServiceError("no memory snapshot collected yet", status=404)
            return self._last_memory
        try:
            top = int(params.get("top", 10))
        except (TypeError, ValueError):
            raise ServiceError("parameter 'top' must be an integer") from None
        payload = memory_snapshot(
            top=top, extra={"artifacts": self._artifact_memory()})
        self._last_memory = payload
        return payload

    def _profile_payload(self, params: dict) -> dict:
        if _flag_param(params, "last"):
            if self._last_profile is None:
                raise ServiceError("no profile collected yet", status=404)
            return self._last_profile
        try:
            seconds = float(params.get("seconds", 1.0))
            interval_ms = float(params.get("interval_ms",
                                           DEFAULT_INTERVAL_SECONDS * 1000.0))
            top = int(params.get("top", 25))
        except (TypeError, ValueError):
            raise ServiceError(
                "parameters 'seconds'/'interval_ms'/'top' must be numbers"
            ) from None
        try:
            payload = collect_profile(
                seconds, interval=interval_ms / 1000.0, top=top)
        except ProfileBusyError as error:
            raise ServiceError(str(error), status=409) from None
        except ValueError as error:
            raise ServiceError(str(error)) from None
        self._last_profile = payload
        return payload

    def observe_request(self, transport: str, route: str, status: int,
                        seconds: float, *, quiet: bool = True) -> None:
        """Record one served request: latency histogram, counter, log line."""
        label = metric_route(route)
        self.http_requests_total.labels(
            transport=transport, route=label, status=str(int(status))).inc()
        self.http_request_seconds.labels(transport=transport, route=label).observe(seconds)
        log_request(transport, route, int(status), seconds, quiet=quiet)

    @staticmethod
    def _read_manifest_retrying(path: Path):
        """Manifest read that tolerates an in-flight artifact swap.

        ``save_artifact(overwrite=True)`` — the ``/update`` write path —
        swaps the artifact directory with two renames, leaving a
        microsecond window with no directory at the path.  The index cache
        already retries its reads across that window; manifest-only reads
        (``/stats`` polls) need the same treatment.
        """
        from ..errors import ArtifactError

        for attempt in range(3):
            try:
                return read_manifest(path)
            except ArtifactError:
                if attempt == 2:
                    raise
                time.sleep(0.05)
        raise AssertionError("unreachable")  # pragma: no cover

    def _plan_summary(self, name: str, path: Path) -> dict:
        """Per-shard-plan /stats summary (parallel to `_manifest_summary`)."""
        router = self._routers[name]
        plan = read_shard_plan(path)
        return {
            "kind": str(plan.get("kind")),
            "side": router.side,
            "algorithm": router.algorithm,
            "n_vertices": router.n_vertices,
            "max_tip_number": router.max_tip_number,
            "n_levels": router.n_levels,
            "format_version": int(plan.get("format_version", 1)),
            "fingerprint": router.fingerprint,
            # Unified lineage field (see _manifest_summary): the manifest
            # fingerprint of the artifact lineage this plan was cut from.
            "base_fingerprint": router.base_fingerprint,
            "source_fingerprint": str(plan.get("source_fingerprint", "")),
            "has_graph": False,
            "loaded": True,
            "sharding": {
                "mode": "plan",
                "n_shards": router.n_shards,
                "requested_shards": router.requested_shards,
                "shards": [shard.summary() for shard in router.shards],
            },
        }

    def _manifest_summary(self, name: str | None) -> dict:
        """Per-artifact /stats summary from the manifest alone (no load)."""
        if name is None and len(self._artifacts) == 1:
            name = next(iter(self._artifacts))
        path = self._artifacts.get(name or "")
        if path is None:
            raise ServiceError(
                f"unknown artifact {name!r} (serving: {', '.join(self._artifacts)})",
                status=404,
            )
        if name in self._routers:
            return self._plan_summary(str(name), path)
        manifest = self._read_manifest_retrying(path)
        streaming = manifest.streaming
        summary = {
            "side": manifest.decomposition.get("side"),
            "algorithm": str(manifest.decomposition.get("algorithm", "")),
            "n_vertices": manifest.summary.get("n_vertices"),
            "max_tip_number": manifest.summary.get("max_tip_number"),
            "n_levels": manifest.summary.get("n_levels"),
            "format_version": manifest.format_version,
            "fingerprint": manifest.fingerprint,
            # The unified lineage field (also what `repro bench-history`
            # reports): the fingerprint the artifact's update stream
            # started from — equal to ``fingerprint`` until a first
            # ``/update`` moves the manifest fingerprint past it.
            "base_fingerprint": str(
                streaming.get("base_fingerprint") or manifest.fingerprint),
            "graph_fingerprint": str(manifest.graph.get("fingerprint", "")),
            "n_edges": manifest.graph.get("n_edges"),
            "has_graph": "u_offsets" in manifest.arrays,
            "loaded": self.cache.peek(manifest.fingerprint),
            # Memory observability of the wedge pipeline: the configured
            # per-chunk budget (None = library default at build time) and
            # the scratch high-water mark of the run that produced the
            # artifact's current decomposition (build or streaming repair).
            "wedge_budget": manifest.decomposition.get("wedge_budget"),
            "peak_scratch_bytes": manifest.counters.get("peak_scratch_bytes"),
            # Staleness bookkeeping: zeroed for a freshly built artifact,
            # advanced by every applied /update batch.
            "streaming": {
                "updates_applied": int(streaming.get("updates_applied", 0)),
                "edges_inserted": int(streaming.get("edges_inserted", 0)),
                "edges_deleted": int(streaming.get("edges_deleted", 0)),
                "last_update_unix": streaming.get("last_update_unix"),
                "base_fingerprint": streaming.get("base_fingerprint"),
                "modes": dict(streaming.get("modes", {})),
            },
        }
        if self.shard_count:
            view = self._shard_views.get(str(name))
            summary["sharding"] = {
                "mode": "in-memory",
                "n_shards": view[1].n_shards if view else self.shard_count,
                "requested_shards": self.shard_count,
            }
        return summary

    def index_for(self, name: str | None = None) -> TipIndex | ShardRouter:
        """The query engine for an artifact name: index, plan, or shard view."""
        if name is None:
            if len(self._artifacts) == 1:
                name = next(iter(self._artifacts))
            else:
                raise ServiceError(
                    "multiple artifacts served; pass artifact=NAME "
                    f"(one of: {', '.join(self._artifacts)})"
                )
        path = self._artifacts.get(name)
        if path is None:
            raise ServiceError(
                f"unknown artifact {name!r} (serving: {', '.join(self._artifacts)})",
                status=404,
            )
        if name in self._routers:
            return self._routers[name]
        index = self.cache.get_or_load(path, mmap=self.mmap)
        if not self.shard_count:
            return index
        # In-memory sharded serving: the router slices the cached index's
        # arrays zero-copy, and is rebuilt whenever the fingerprint moves
        # (a concurrent rebuild is benign — both routers are exact).
        view = self._shard_views.get(name)
        if view is not None and view[0] == index.fingerprint:
            return view[1]
        router = ShardRouter.from_index(index, self.shard_count, name=name)
        self._shard_views[name] = (index.fingerprint, router)
        return router

    def base_index_for(self, name: str | None = None) -> TipIndex:
        """The unsharded :class:`TipIndex` behind an artifact name.

        Replication fingerprints and repairs this base index even when the
        service answers queries through a θ-range shard view; persisted
        shard plans carry no base index (they are read-only) and refuse.
        """
        engine = self.index_for(name)
        if isinstance(engine, ShardRouter):
            resolved = name if name is not None else self.artifact_names[0]
            if resolved in self._routers:
                raise ServiceError(
                    f"{resolved!r} is a persisted shard plan; replication "
                    "needs the source *.tipidx artifact", status=409)
            return self.cache.get_or_load(
                self._artifacts[resolved], mmap=self.mmap)
        return engine

    # ------------------------------------------------------------------
    # Streaming updates (the one write path)
    # ------------------------------------------------------------------
    @staticmethod
    def _edge_list(body: dict, key: str):
        raw = body.get(key)
        if raw is None:
            return None
        if not isinstance(raw, list):
            raise ServiceError(f'body field "{key}" must be a JSON array of [u, v] pairs')
        for pair in raw:
            if (not isinstance(pair, (list, tuple)) or len(pair) != 2
                    or any(isinstance(value, bool) or not isinstance(value, int)
                           for value in pair)):
                raise ServiceError(f'body field "{key}" must contain [u, v] integer pairs')
            # JSON integers are unbounded; anything outside int64 would blow
            # up inside numpy instead of answering 400.
            if any(not (-2**63 <= value < 2**63) for value in pair):
                raise ServiceError(f'body field "{key}" contains an id outside int64 range')
        return raw

    def _apply_update(self, artifact: str | None, params: dict, body: dict | None,
                      *, replicated: bool = False) -> dict:
        """Apply one edge-update batch (the ``/update`` body).

        ``replicated=True`` marks a batch the replication coordinator is
        replaying from the leader's log: it bypasses the follower
        write guard and skips the leader fan-out hook (the record already
        exists), but runs the identical patch + repair + persist path.
        """
        if body is None:
            raise ServiceError(
                "update requires a POST body with insert/delete edge lists", status=405
            )
        from ..streaming import StreamingConfig

        inserts = self._edge_list(body, "insert")
        deletes = self._edge_list(body, "delete")
        if not inserts and not deletes:
            raise ServiceError('update body must carry "insert" and/or "delete" edges')

        name = artifact
        if name is None:
            if len(self._artifacts) != 1:
                raise ServiceError(
                    "multiple artifacts served; pass artifact=NAME "
                    f"(one of: {', '.join(self._artifacts)})"
                )
            name = next(iter(self._artifacts))
        path = self._artifacts.get(name)
        if path is None:
            raise ServiceError(
                f"unknown artifact {name!r} (serving: {', '.join(self._artifacts)})",
                status=404,
            )
        if name in self._routers:
            raise ServiceError(
                "shard plans are read-only; apply updates to the source "
                "artifact (or through the replication leader) and re-plan",
                status=409,
            )
        if self.replication is not None and not replicated:
            self.replication.check_writable()

        with self._update_lock, self._mutating():
            # The "artifact.save" fault site fires before any state is
            # touched, so a simulated persistence failure rejects the batch
            # atomically (503) instead of leaving memory and disk torn.
            faults.fire("artifact.save")
            index = self.cache.get_or_load(path, mmap=self.mmap)
            manifest = read_manifest(path)
            decomposition = dict(manifest.decomposition)
            config_kwargs: dict = {}
            if "damage_threshold" in body:
                try:
                    config_kwargs["damage_threshold"] = float(body["damage_threshold"])
                except (TypeError, ValueError):
                    raise ServiceError('"damage_threshold" must be a number') from None
            algorithm = str(decomposition.get("algorithm") or "receipt").lower()
            config_kwargs["full_algorithm"] = algorithm
            if algorithm.startswith("receipt"):
                full_kwargs = {}
                if decomposition.get("n_partitions") is not None:
                    full_kwargs["n_partitions"] = int(decomposition["n_partitions"])
                config_kwargs["full_kwargs"] = full_kwargs
            if decomposition.get("peel_kernel"):
                config_kwargs["peel_kernel"] = str(decomposition["peel_kernel"])

            try:
                repaired, update = index.apply_delta(
                    inserts, deletes, config=StreamingConfig(**config_kwargs)
                )
            except StreamingError as error:
                # The batch conflicts with the current graph state (missing
                # delete, duplicate insert, out-of-range id); nothing was
                # modified.
                raise ServiceError(str(error), status=409) from None

            from ..peeling.base import TipDecompositionResult

            result = TipDecompositionResult(
                tip_numbers=update.tip_numbers,
                side=update.side,
                initial_butterflies=update.butterflies,
                algorithm=str(decomposition.get("algorithm", "")),
                counters=update.counters,
            )
            previous = manifest.streaming
            modes = Counter({str(key): int(value)
                             for key, value in dict(previous.get("modes", {})).items()})
            modes[update.mode] += 1
            streaming = {
                "updates_applied": int(previous.get("updates_applied", 0)) + 1,
                "edges_inserted": int(previous.get("edges_inserted", 0)) + update.inserted,
                "edges_deleted": int(previous.get("edges_deleted", 0)) + update.deleted,
                "last_update_unix": time.time(),
                "base_fingerprint": previous.get("base_fingerprint") or manifest.fingerprint,
                "modes": dict(modes),
            }
            # Write-ahead: the batch is fsync'd into the replication log
            # *before* the artifact swap.  A crash mid-append leaves a
            # torn log tail (truncated at next open; the batch was never
            # acknowledged, so that is a clean reject), and a crash
            # between append and swap is replayed from the log at the
            # next leader startup.
            record = None
            if (self.replication is not None and not replicated
                    and self.replication.role == "leader"):
                record = self.replication.record_applied(
                    name, body, update.mode, repaired)
            new_manifest = save_artifact(
                path,
                update.graph,
                result,
                config=decomposition,
                overwrite=True,
                streaming=streaming,
                center_butterflies=update.center_butterflies,
            )
            # Atomic swap: the repaired index goes straight into the cache
            # under its new fingerprint, the displaced snapshot is dropped.
            repaired.fingerprint = new_manifest.fingerprint
            self.cache.invalidate(manifest.fingerprint)
            self.cache.put(new_manifest.fingerprint, repaired)
            # The in-memory shard view (if any) sliced the displaced
            # snapshot's arrays; drop it so the next read re-shards the
            # repaired index.
            self._shard_views.pop(name, None)
            with self._requests_lock:
                self.update_modes[update.mode] += 1
            # Leader fan-out after the local commit, still under the
            # update lock so followers see records in apply order.
            if record:
                self.replication.push_applied(record)

        payload = update.summary()
        payload.update({
            "artifact": name,
            "fingerprint": new_manifest.fingerprint,
            "previous_fingerprint": manifest.fingerprint,
            "n_edges": update.graph.n_edges,
            "streaming": streaming,
        })
        if record:
            payload["replication"] = {
                "offset": record["offset"],
                "state": record["state"],
            }
        return payload

    # ------------------------------------------------------------------
    # Parameter parsing
    # ------------------------------------------------------------------
    @staticmethod
    def _int_param(params: dict, key: str) -> int:
        raw = params.get(key)
        if raw is None:
            raise ServiceError(f"missing required parameter {key!r}")
        try:
            return int(raw)
        except (TypeError, ValueError):
            raise ServiceError(f"parameter {key!r} must be an integer, got {raw!r}") from None

    @staticmethod
    def _vertices_param(params: dict, body: dict | None) -> np.ndarray:
        if body is not None and "vertices" in body:
            raw = body["vertices"]
            if not isinstance(raw, list):
                raise ServiceError('body field "vertices" must be a JSON array')
            values = raw
        else:
            raw = params.get("vertices")
            if raw is None:
                raise ServiceError(
                    'missing vertices: pass ?vertices=1,2,3 or a JSON body {"vertices": [...]}'
                )
            values = [piece for piece in str(raw).split(",") if piece != ""]
        if len(values) > MAX_RESPONSE_VERTICES:
            raise ServiceError(
                f"batch of {len(values)} vertices exceeds the per-request cap "
                f"of {MAX_RESPONSE_VERTICES}"
            )
        vertices = []
        for value in values:
            # int(str(x)) rejects floats ("3.7" raises) instead of silently
            # truncating them; bool must be excluded (int(True) would be 1).
            if isinstance(value, bool):
                raise ServiceError("vertices must all be integers")
            try:
                vertices.append(int(str(value)))
            except (TypeError, ValueError):
                raise ServiceError("vertices must all be integers") from None
        return np.asarray(vertices, dtype=np.int64)

    # ------------------------------------------------------------------
    # Coalesced point lookups (the async front end's hot path)
    # ------------------------------------------------------------------
    def theta_payloads(self, artifact: str | None, vertices: list) -> list:
        """Answer many point-θ requests with one vectorized gather.

        Equivalent to ``len(vertices)`` sequential ``handle("/theta", ...)``
        calls — same payloads, same :class:`ServiceError` per bad request,
        same request accounting — but the artifact resolution (one manifest
        read) and the tip-number gather are paid once per batch.  Failures
        come back in-band as :class:`ServiceError` entries so one bad vertex
        never poisons its batch-mates.
        """
        self.count_requests("/theta", len(vertices))
        try:
            index = self.index_for(artifact)
        except ServiceError as error:
            return [error] * len(vertices)
        ids = np.asarray(vertices, dtype=np.int64)
        if ids.size and 0 <= int(ids.min()) and int(ids.max()) < index.n_vertices:
            # A TipIndex exposes the dense per-vertex array; a ShardRouter
            # answers the same gather by shard-scatter (still vectorized).
            dense = getattr(index, "tip_numbers", None)
            thetas = dense[ids] if dense is not None else index.gather_thetas(ids)
            return [
                {"vertex": int(vertex), "theta": int(theta)}
                for vertex, theta in zip(vertices, thetas)
            ]
        # Slow path (some vertex out of range): fall back to the point
        # query per request so error messages stay byte-identical.
        results: list = []
        for vertex in vertices:
            try:
                results.append({"vertex": int(vertex), "theta": index.theta(int(vertex))})
            except ServiceError as error:
                results.append(error)
        return results

    def _theta_batch_deadline(self, index, vertices, deadline: Deadline) -> dict:
        """Deadline-bounded ``/theta/batch``.

        Byte-identical to the undeadlined answer whenever everything
        resolves in time; a structured ``degraded: true`` partial answer
        (``None`` thetas for unresolved shards) when some shards miss the
        budget; 503 + ``Retry-After`` when no shard resolved at all.
        """
        if deadline.expired():
            self.count_deadline_exceeded()
            deadline.raise_if_expired("/theta/batch")
        if not isinstance(index, ShardRouter):
            # A single index gathers atomically: either it answers in time
            # or the deadline check above already failed the request.
            return {"vertices": vertices, "thetas": index.theta_batch(vertices)}
        thetas, unresolved = index.theta_batch_degraded(vertices, deadline=deadline)
        if not unresolved:
            return {"vertices": vertices, "thetas": thetas}
        resolved = sum(1 for theta in thetas if theta is not None)
        if resolved == 0 and len(thetas) > 0:
            self.count_deadline_exceeded()
            raise DeadlineExceededError(
                f"no shard resolved within the {deadline.seconds * 1000.0:.0f}ms "
                "deadline", retry_after=max(0.05, deadline.seconds))
        self.count_degraded()
        return {
            "vertices": vertices,
            "thetas": thetas,
            "degraded": True,
            "resolved": resolved,
            "unresolved_shards": unresolved,
        }

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def handle(self, route: str, params: dict | None = None, body: dict | None = None) -> dict:
        """Serve one request; returns a JSON-able payload or raises ServiceError."""
        params = params or {}
        route = route.rstrip("/") or "/"
        # Only known routes get their own counter entry; arbitrary scanner
        # paths would otherwise grow the Counter (and /stats) without bound.
        self.count_requests(route)
        artifact = params.get("artifact")

        if route == "/healthz":
            # Liveness always answers 200; SLO breaches surface as a
            # ``degraded`` status so orchestrators can alarm without
            # restarting a server that is up but slow.
            slo = self.slo.evaluate()
            return {"status": slo["status"], "artifacts": self.artifact_names}

        if route == "/slo":
            if _flag_param(params, "cached"):
                cached = self.slo.last_payload
                if cached is None:
                    raise ServiceError("no SLO evaluation recorded yet", status=404)
                return cached
            return self.slo.evaluate()

        if route == "/debug/memory":
            return self._memory_payload(params)

        if route == "/debug/profile":
            return self._profile_payload(params)

        if route.startswith("/replication/"):
            if self.replication is None:
                raise ServiceError(
                    "replication is not configured on this server "
                    "(start with --role leader or --role follower)", status=404)
            if route == "/replication/status":
                return self.replication.status()
            if route == "/replication/log":
                return self.replication.log_payload(params)
            if route == "/replication/apply":
                return self.replication.handle_push(body)
            if route == "/replication/snapshot":
                return self.replication.snapshot_payload()

        if route == "/stats":
            payload: dict = {"artifacts": {}}
            names = [artifact] if artifact else self.artifact_names
            want_histogram = _flag_param(params, "histogram")
            for name in names:
                summary = self._manifest_summary(name)
                if want_histogram:
                    # The histogram needs the index; everything else comes
                    # from the manifest so a monitoring poll of /stats never
                    # cold-loads (and LRU-thrashes) unqueried artifacts.
                    index = self.index_for(name)
                    summary["histogram"] = {
                        str(level): count for level, count in index.histogram().items()
                    }
                payload["artifacts"][name] = summary
            # Cache metrics are read after the summaries so the loads they
            # triggered are reflected in the numbers.
            payload["cache"] = self.cache.stats()
            with self._requests_lock:
                payload["requests"] = dict(self.requests)
                payload["updates"] = dict(self.update_modes)
                # Uptime from the monotonic clock so an NTP step can never
                # produce a negative or jumping value mid-poll.
                payload["server"] = {
                    "started_unix": self.started_unix,
                    "uptime_seconds": time.monotonic() - self._started_monotonic,
                    "requests_total": dict(self.requests),
                }
            if self.transport_metrics:
                payload["transport"] = {
                    name: provider() for name, provider in self.transport_metrics.items()
                }
            if self.replication is not None:
                payload["replication"] = self.replication.status()
            resilience: dict = {
                "breakers": self.breakers.snapshot(),
                "faults": faults.metrics(),
            }
            with self._requests_lock:
                resilience["degraded_total"] = self.degraded_total
                resilience["deadline_exceeded_total"] = self.deadline_exceeded_total
            if self.replication is not None:
                resilience["retry"] = self.replication.retry_policy.stats()
                resilience["resyncs"] = self.replication.resyncs
            payload["resilience"] = resilience
            return payload

        if route == "/update":
            return self._apply_update(artifact, params, body)

        if route == "/theta":
            deadline = Deadline.from_params(params)
            index = self.index_for(artifact)
            vertex = self._int_param(params, "vertex")
            if deadline is not None and deadline.expired():
                self.count_deadline_exceeded()
                deadline.raise_if_expired("/theta")
            return {"vertex": vertex, "theta": index.theta(vertex)}

        if route == "/theta/batch":
            if body is not None and "deadline_ms" in body:
                deadline = Deadline.from_params(body)
            else:
                deadline = Deadline.from_params(params)
            index = self.index_for(artifact)
            vertices = self._vertices_param(params, body)
            if deadline is None:
                thetas = index.theta_batch(vertices)
                return {"vertices": vertices, "thetas": thetas}
            return self._theta_batch_deadline(index, vertices, deadline)

        if route == "/top-k":
            index = self.index_for(artifact)
            k = self._int_param(params, "k")
            if k > MAX_RESPONSE_VERTICES:
                raise ServiceError(
                    f"top-k is capped at {MAX_RESPONSE_VERTICES} vertices per "
                    f"response, got k={k}"
                )
            vertices, thetas = index.top_k(k)
            return {"k": k, "vertices": vertices, "thetas": thetas}

        if route == "/k-tip":
            index = self.index_for(artifact)
            k = self._int_param(params, "k")
            limit = (
                self._int_param(params, "limit")
                if "limit" in params else MAX_RESPONSE_VERTICES
            )
            if limit < 0:
                raise ServiceError(f"limit must be non-negative, got {limit}")
            limit = min(limit, MAX_RESPONSE_VERTICES)
            size = index.k_tip_size(k)
            members = index.k_tip_members(k, limit=limit)
            return {
                "k": k,
                "size": size,
                "truncated": bool(size > limit),
                "vertices": members,
            }

        if route == "/community":
            index = self.index_for(artifact)
            k = self._int_param(params, "k")
            vertex = self._int_param(params, "vertex") if "vertex" in params else None
            candidates = index.k_tip_size(k)
            if candidates > MAX_COMMUNITY_VERTICES:
                raise ServiceError(
                    f"level {k} has {candidates} vertices; community extraction "
                    f"is capped at {MAX_COMMUNITY_VERTICES} — query a higher k"
                )
            components = index.communities(k, vertex=vertex)
            return {
                "k": k,
                "vertex": vertex,
                "n_communities": len(components),
                "communities": components,
            }

        raise ServiceError(
            f"unknown route {route!r}; endpoints: {', '.join(ENDPOINTS)}; "
            f"diagnostics: {', '.join(DIAGNOSTIC_ENDPOINTS)}", status=404
        )


# ----------------------------------------------------------------------
# HTTP transport
# ----------------------------------------------------------------------
class _TipHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    # SO_REUSEADDR before bind: tests and benchmarks restart servers on
    # ports still in TIME_WAIT instead of flaking with address-in-use.
    allow_reuse_address = True


def _make_handler(service: TipService, *, quiet: bool) -> type:
    class TipRequestHandler(BaseHTTPRequestHandler):
        """Threaded-transport request handler bound to one :class:`TipService`."""

        server_version = "repro-tip-service/1"
        # Persistent connections: with HTTP/1.0 (the BaseHTTPRequestHandler
        # default) every request paid a fresh TCP handshake, handicapping
        # the threaded transport in any comparison.  Every response carries
        # an exact Content-Length, which is what HTTP/1.1 keep-alive needs.
        protocol_version = "HTTP/1.1"
        # TCP_NODELAY: headers and body leave in separate writes; on
        # keep-alive connections Nagle + delayed ACK would turn that into
        # ~40ms per request.  (asyncio disables Nagle by default already.)
        disable_nagle_algorithm = True

        def _respond(self, status: int, payload: dict) -> None:
            body = json.dumps(to_jsonable(payload)).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            retry_after = payload.get("retry_after_seconds")
            if retry_after is not None:
                self.send_header("Retry-After", str(max(1, round(retry_after))))
            if self.close_connection:
                # Advertise the hang-up so keep-alive clients don't try to
                # reuse a connection we are about to close.
                self.send_header("Connection", "close")
            self.end_headers()
            self.wfile.write(body)

        def _respond_text(self, status: int, body: bytes, content_type: str) -> None:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            if self.close_connection:
                self.send_header("Connection", "close")
            self.end_headers()
            self.wfile.write(body)

        def _dispatch(self, body: dict | None) -> None:
            parsed = urlsplit(self.path)
            params = {key: values[-1] for key, values in parse_qs(parsed.query).items()}
            route = parsed.path.rstrip("/") or "/"
            started = time.perf_counter()
            if route == "/metrics":
                # Served before handle(): the scrape path must stay up even
                # when the JSON API is answering errors.
                service.count_requests("/metrics")
                self._respond_text(
                    200, service.metrics_text().encode("utf-8"), METRICS_CONTENT_TYPE)
                status = 200
            else:
                try:
                    payload = service.handle(parsed.path, params, body)
                except ServiceError as error:
                    status = error.status
                    self._respond(status, error_payload(error))
                except ReproError as error:
                    status = 500
                    self._respond(500, error_payload(error, status=500))
                else:
                    status = 200
                    self._respond(200, payload)
            service.observe_request(
                "thread", route, status, time.perf_counter() - started, quiet=quiet)

        def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
            """Dispatch a GET request (no body)."""
            self._dispatch(None)

        def do_POST(self) -> None:  # noqa: N802
            """Read, cap and parse the POST body, then dispatch."""
            length = int(self.headers.get("Content-Length") or 0)
            if length > MAX_REQUEST_BODY_BYTES:
                # The unread body would corrupt the keep-alive stream; hang up.
                self.close_connection = True
                self._respond(413, error_payload(ServiceError(
                    f"request body of {length} bytes exceeds the "
                    f"{MAX_REQUEST_BODY_BYTES}-byte cap", status=413)))
                service.observe_request("thread", self.path, 413, 0.0, quiet=quiet)
                return
            raw = self.rfile.read(length) if length else b""
            try:
                body = parse_post_body(raw)
            except ServiceError as error:
                self._respond(error.status, error_payload(error))
                service.observe_request(
                    "thread", self.path, error.status, 0.0, quiet=quiet)
                return
            self._dispatch(body)

        def log_message(self, format: str, *args) -> None:  # noqa: A002
            """Respect ``quiet``: suppress the default stderr access log."""
            if not quiet:
                super().log_message(format, *args)

    return TipRequestHandler


def create_server(
    artifact_paths,
    *,
    host: str = "127.0.0.1",
    port: int = 8750,
    cache_capacity: int = 8,
    mmap: bool = True,
    quiet: bool = True,
    shards: int | None = None,
    service: TipService | None = None,
) -> ThreadingHTTPServer:
    """Build (but do not start) the HTTP server; ``port=0`` picks a free port.

    The :class:`TipService` is attached as ``server.service`` so tests and
    embedding code can reach the cache and metrics.  Passing an existing
    ``service`` mounts a second transport over the same state — the
    observability benchmark serves one service through both transports to
    assert byte-identical diagnostics.
    """
    if service is None:
        service = TipService(
            artifact_paths, cache_capacity=cache_capacity, mmap=mmap, shards=shards)
    server = _TipHTTPServer((host, port), _make_handler(service, quiet=quiet))
    server.service = service  # type: ignore[attr-defined]
    return server


def serve(
    artifact_paths,
    *,
    host: str = "127.0.0.1",
    port: int = 8750,
    cache_capacity: int = 8,
    mmap: bool = True,
    quiet: bool = False,
    shards: int | None = None,
    service: TipService | None = None,
    ready_event: threading.Event | None = None,
) -> None:
    """Serve artifacts until interrupted (the ``repro serve`` command body)."""
    server = create_server(
        artifact_paths,
        host=host,
        port=port,
        cache_capacity=cache_capacity,
        mmap=mmap,
        quiet=quiet,
        shards=shards,
        service=service,
    )
    bound_host, bound_port = server.server_address[0], server.server_address[1]
    print(
        f"serving {len(server.service.artifact_names)} artifact(s) "
        f"({', '.join(server.service.artifact_names)}) "
        f"on http://{bound_host}:{bound_port}"
    )
    if ready_event is not None:
        ready_event.set()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
