"""θ-range sharding: split one tip index into CD-subset shards, route exactly.

RECEIPT's coarse decomposition partitions the peeled side into subsets of
*disjoint θ ranges* — which makes θ the natural shard key for serving: a
shard owns every vertex whose tip number falls in its range, and because
the artifact's ``order`` permutation is θ-sorted, a shard is simply a
*contiguous slice* of it.  Cuts are always placed on level boundaries, so
no distinct tip number ever straddles two shards.

Two layers:

* :func:`plan_shards` / :func:`write_shard_plan` — the **shard planner**:
  slice an artifact's θ-sorted permutation and level CSR into per-shard
  arrays, either in memory or persisted as a plan directory
  (``plan.json`` + one ``shard-NNN/arrays.npz`` per shard, fingerprinted
  like artifacts and written atomically).
* :class:`ShardRouter` — the **scatter/gather front end**: duck-types the
  :class:`~repro.service.index.TipIndex` query surface, routing point-θ
  lookups to exactly one shard and merging batch-θ, top-k, k-tip and
  histogram answers across shards.  Every merge reproduces the unsharded
  index's answer *bit for bit* (same boundary arithmetic, same tie-break
  lexsort, same error strings) — the serving benchmark gates exactly that.

The router is deliberately transport-free: :class:`TipService` serves one
the same way it serves a ``TipIndex``, so both HTTP transports (threaded
and async coalescing) get sharded serving without any new code.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..errors import ArtifactError, FaultInjectedError, ServiceError
from ..obs.trace import current_tracer
from . import faults
from .artifacts import load_artifact
from .index import TipIndex

__all__ = [
    "SHARD_PLAN_FILENAME",
    "SHARD_PLAN_FORMAT_VERSION",
    "SHARD_PLAN_KIND",
    "ShardRouter",
    "is_shard_plan",
    "plan_boundaries",
    "plan_shards",
    "read_shard_plan",
    "write_shard_plan",
]

SHARD_PLAN_KIND = "tip-shard-plan"
SHARD_PLAN_FORMAT_VERSION = 1
SHARD_PLAN_FILENAME = "plan.json"
SHARD_ARRAYS_FILENAME = "arrays.npz"


def is_shard_plan(path: str | Path) -> bool:
    """Whether ``path`` is a shard-plan directory (vs a ``*.tipidx`` artifact)."""
    return (Path(path) / SHARD_PLAN_FILENAME).is_file()


def plan_boundaries(level_offsets: np.ndarray, n_shards: int) -> list[int]:
    """Cut positions in the θ-sorted order: near-equal shards, level-aligned.

    Returns ``n_cuts + 1`` strictly increasing positions starting at 0 and
    ending at ``n_vertices``.  Each interior cut is the level boundary
    nearest to the ideal equal split; when a graph has fewer levels than
    requested shards, fewer (but never zero) shards come back — a level is
    atomic and is never split.
    """
    if n_shards < 1:
        raise ServiceError(f"shard count must be >= 1, got {n_shards}")
    level_offsets = np.asarray(level_offsets, dtype=np.int64)
    n = int(level_offsets[-1]) if level_offsets.size else 0
    cuts = [0]
    for index in range(1, n_shards):
        target = round(index * n / n_shards)
        at = int(np.searchsorted(level_offsets, target, side="left"))
        candidates = []
        if at < level_offsets.size:
            candidates.append(int(level_offsets[at]))
        if at > 0:
            candidates.append(int(level_offsets[at - 1]))
        cut = min(candidates, key=lambda c: (abs(c - target), c)) if candidates else n
        if cut <= cuts[-1]:
            # The nearest boundary was already used; take the next one up
            # so shards stay non-empty (or stop when none remain).
            above = level_offsets[level_offsets > cuts[-1]]
            if above.size == 0 or int(above[0]) >= n:
                break
            cut = int(above[0])
        if cut >= n:
            break
        cuts.append(cut)
    cuts.append(n)
    return cuts


@dataclass
class _Shard:
    """One θ-range shard: a contiguous slice of the global θ-sorted order."""

    shard_id: int
    vertex_ids: np.ndarray  # the order slice: sorted by (θ asc, id asc)
    level_values: np.ndarray
    level_offsets: np.ndarray  # rebased to start at 0
    sorted_tips: np.ndarray = field(init=False)
    _ids_by_id: np.ndarray = field(init=False)
    _tips_by_id: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        self.vertex_ids = np.asarray(self.vertex_ids, dtype=np.int64)
        self.level_values = np.asarray(self.level_values, dtype=np.int64)
        self.level_offsets = np.asarray(self.level_offsets, dtype=np.int64)
        self.sorted_tips = np.repeat(self.level_values, np.diff(self.level_offsets))
        # Point lookups bisect an id-sorted copy instead of paying a dense
        # per-vertex array per shard (shards hold only their own vertices).
        permutation = np.argsort(self.vertex_ids, kind="stable")
        self._ids_by_id = self.vertex_ids[permutation]
        self._tips_by_id = self.sorted_tips[permutation]

    @property
    def n_vertices(self) -> int:
        """Number of vertices this shard owns."""
        return int(self.vertex_ids.shape[0])

    @property
    def theta_min(self) -> int | None:
        """Smallest tip number in this shard's θ range (None when empty)."""
        return int(self.level_values[0]) if self.level_values.size else None

    @property
    def theta_max(self) -> int | None:
        """Largest tip number in this shard's θ range (None when empty)."""
        return int(self.level_values[-1]) if self.level_values.size else None

    def lookup(self, vertices: np.ndarray) -> np.ndarray:
        """θ of vertices known to live in this shard (O(m log local))."""
        positions = np.searchsorted(self._ids_by_id, vertices)
        return self._tips_by_id[positions]

    def arrays(self) -> dict[str, np.ndarray]:
        """The shard's persistable arrays (written to ``arrays.npz``)."""
        return {
            "vertex_ids": self.vertex_ids,
            "level_values": self.level_values,
            "level_offsets": self.level_offsets,
        }

    def summary(self) -> dict:
        """Shard descriptor for ``plan.json`` and ``/stats``."""
        return {
            "shard": self.shard_id,
            "n_vertices": self.n_vertices,
            "n_levels": int(self.level_values.shape[0]),
            "theta_min": self.theta_min,
            "theta_max": self.theta_max,
        }


def _slice_shards(
    order: np.ndarray,
    level_values: np.ndarray,
    level_offsets: np.ndarray,
    n_shards: int,
) -> list[_Shard]:
    """Cut the θ-sorted order into level-aligned shards (zero-copy slices)."""
    cuts = plan_boundaries(level_offsets, n_shards)
    shards = []
    for shard_id, (low, high) in enumerate(zip(cuts, cuts[1:])):
        level_low = int(np.searchsorted(level_offsets, low, side="left"))
        level_high = int(np.searchsorted(level_offsets, high, side="left"))
        shards.append(_Shard(
            shard_id=shard_id,
            vertex_ids=np.asarray(order[low:high], dtype=np.int64),
            level_values=np.asarray(level_values[level_low:level_high], dtype=np.int64),
            level_offsets=np.asarray(
                level_offsets[level_low:level_high + 1], dtype=np.int64) - low,
        ))
    return shards


def _plan_digest(payload: dict) -> str:
    content = {key: value for key, value in payload.items() if key != "fingerprint"}
    canonical = json.dumps(content, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ShardRouter:
    """Exact scatter/gather over θ-range shards, duck-typing ``TipIndex``.

    Point θ consults exactly one shard (a routing-array lookup plus one
    local bisection); batch θ scatters vertices to their owning shards and
    gathers the answers back in request order; top-k walks shards from the
    highest θ range down until the candidate suffix covers ``k`` and then
    applies the unsharded boundary/tie-break arithmetic to it; k-tip and
    histogram concatenate per-shard slices (ranges are disjoint and
    ascending, so concatenation *is* the merge).  Every answer — values,
    ordering, error strings — is bit-identical to the unsharded
    :class:`~repro.service.index.TipIndex`.

    Community queries need the graph's CSR, which shards do not carry;
    an in-memory router built by :meth:`from_index` keeps the base index
    and delegates, a router loaded from a persisted plan answers 404.
    """

    def __init__(
        self,
        shards: list[_Shard],
        *,
        n_vertices: int,
        side: str = "U",
        algorithm: str = "",
        fingerprint: str = "",
        base_fingerprint: str = "",
        name: str = "",
        requested_shards: int | None = None,
        base: TipIndex | None = None,
    ):
        self._shards = list(shards)
        self.n_vertices = int(n_vertices)
        self.side = side
        self.algorithm = algorithm
        self.fingerprint = fingerprint
        self.base_fingerprint = base_fingerprint or fingerprint
        self.name = name
        self.requested_shards = int(requested_shards or len(self._shards))
        self.base = base
        self.graph = None  # parallel to TipIndex: no CSR behind the router
        # vertex id -> owning shard; int32 keeps the table 4 bytes/vertex.
        routing = np.full(self.n_vertices, -1, dtype=np.int32)
        for shard in self._shards:
            routing[shard.vertex_ids] = shard.shard_id
        self._routing = routing
        self.level_values = (
            np.concatenate([shard.level_values for shard in self._shards])
            if self._shards else np.zeros(0, dtype=np.int64)
        )
        # Degenerate single-shard deployment: pay the same dense θ array
        # the unsharded index holds so gathers stay O(m) — the benchmark
        # gates this path at parity.  Multi-shard routers stay thin (the
        # routing table only) and bisect per shard.
        if len(self._shards) == 1 and self._shards[0].n_vertices == self.n_vertices:
            only = self._shards[0]
            dense = np.empty(self.n_vertices, dtype=np.int64)
            dense[only.vertex_ids] = only.sorted_tips
            self._dense_tips: np.ndarray | None = dense
        else:
            self._dense_tips = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_index(cls, index: TipIndex, n_shards: int, *, name: str = "") -> "ShardRouter":
        """Shard a loaded index in memory (zero-copy slices of its arrays)."""
        shards = _slice_shards(
            index.order, index.level_values, index.level_offsets, n_shards)
        return cls(
            shards,
            n_vertices=index.n_vertices,
            side=index.side,
            algorithm=index.algorithm,
            fingerprint=index.fingerprint,
            name=name,
            requested_shards=n_shards,
            base=index,
        )

    @classmethod
    def load(cls, plan_dir: str | Path, *, mmap: bool = True) -> "ShardRouter":
        """Load a persisted shard plan written by :func:`write_shard_plan`."""
        plan_dir = Path(plan_dir)
        plan = read_shard_plan(plan_dir)
        shards = []
        for entry in plan["shards"]:
            arrays_path = plan_dir / str(entry["dir"]) / SHARD_ARRAYS_FILENAME
            try:
                with np.load(arrays_path, mmap_mode="r" if mmap else None) as payload:
                    arrays = {key: np.asarray(payload[key], dtype=np.int64)
                              for key in ("vertex_ids", "level_values", "level_offsets")}
            except (OSError, ValueError, KeyError) as exc:
                raise ArtifactError(
                    f"cannot read shard arrays from {arrays_path}: {exc}") from exc
            shards.append(_Shard(shard_id=int(entry["shard"]), **arrays))
        return cls(
            shards,
            n_vertices=int(plan["n_vertices"]),
            side=str(plan["side"]),
            algorithm=str(plan.get("algorithm", "")),
            fingerprint=str(plan.get("fingerprint", "")),
            base_fingerprint=str(plan.get("base_fingerprint", "")),
            name=str(plan.get("name", "")),
            requested_shards=int(plan.get("requested_shards", len(shards))),
        )

    # ------------------------------------------------------------------
    # Basic properties (mirror TipIndex)
    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        """Actual shard count (may be below the requested count)."""
        return len(self._shards)

    @property
    def max_tip_number(self) -> int:
        """Largest tip number across all shards (0 when empty)."""
        return int(self.level_values[-1]) if self.level_values.size else 0

    @property
    def n_levels(self) -> int:
        """Number of distinct tip-number levels across all shards."""
        return int(self.level_values.shape[0])

    @property
    def shards(self) -> list[_Shard]:
        """The shards in ascending θ-range order."""
        return list(self._shards)

    # ------------------------------------------------------------------
    # Point / batch lookups
    # ------------------------------------------------------------------
    def _validate_vertices(self, vertices) -> np.ndarray:
        # Byte-identical error surface to TipIndex._validate_vertices.
        vertices = np.asarray(vertices, dtype=np.int64).reshape(-1)
        if vertices.size and (vertices.min() < 0 or vertices.max() >= self.n_vertices):
            bad = vertices[(vertices < 0) | (vertices >= self.n_vertices)][0]
            raise ServiceError(
                f"vertex {int(bad)} out of range for side {self.side!r} "
                f"with {self.n_vertices} vertices"
            )
        return vertices

    def theta(self, vertex: int) -> int:
        """Tip number of one vertex: route to its shard, bisect locally."""
        vertex = int(self._validate_vertices([vertex])[0])
        shard = self._shards[int(self._routing[vertex])]
        return int(shard.lookup(np.asarray([vertex], dtype=np.int64))[0])

    def gather_thetas(self, vertices: np.ndarray) -> np.ndarray:
        """Unvalidated scatter/gather batch lookup (callers range-check).

        Vertices are grouped by owning shard, each group answers with one
        local bisection, and the answers scatter back into request order.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        out = np.empty(vertices.shape[0], dtype=np.int64)
        if not vertices.size:
            return out
        if self._dense_tips is not None:
            # Single shard: no scatter needed, one dense gather — parity
            # with the unsharded index (the 1-shard benchmark gate
            # measures this path).
            faults.fire("shard.gather")
            return self._dense_tips[vertices]
        owners = self._routing[vertices]
        tracer = current_tracer()
        if self.n_shards == 1:
            faults.fire("shard.gather")
            with tracer.span("router.gather").set(shard=0, n=int(vertices.size)):
                return self._shards[0].lookup(vertices)
        for shard_id in np.unique(owners):
            mask = owners == shard_id
            shard = self._shards[int(shard_id)]
            faults.fire("shard.gather")
            with tracer.span("router.gather").set(
                    shard=int(shard_id), n=int(np.count_nonzero(mask))):
                out[mask] = shard.lookup(vertices[mask])
        return out

    def theta_batch(self, vertices) -> np.ndarray:
        """Tip numbers for a batch of vertices (validated scatter/gather)."""
        return self.gather_thetas(self._validate_vertices(vertices))

    def theta_batch_degraded(self, vertices, *, deadline=None):
        """Deadline-bounded validated scatter/gather (the degraded read path).

        Returns ``(thetas, unresolved_shards)``.  While every shard
        resolves in time ``thetas`` is exactly :meth:`theta_batch`'s array
        and ``unresolved_shards`` is empty — the serving layer then renders
        a byte-identical payload.  A shard that raises an injected fault or
        whose turn arrives after the deadline expired is *skipped*: its
        vertices come back as ``None`` and its id lands in
        ``unresolved_shards``, the structured partial answer the
        ``degraded: true`` contract promises.
        """
        vertices = self._validate_vertices(vertices)
        if self._dense_tips is not None or self.n_shards == 1:
            # One shard is all-or-nothing: either the gather answers (the
            # caller renders the exact payload) or its fault/deadline
            # failure propagates as a plain 503.
            return self.gather_thetas(vertices), []
        out = np.empty(vertices.shape[0], dtype=np.int64)
        resolved = np.zeros(vertices.shape[0], dtype=bool)
        unresolved: list[int] = []
        owners = self._routing[vertices] if vertices.size else np.zeros(0, dtype=np.int64)
        tracer = current_tracer()
        for shard_id in np.unique(owners):
            mask = owners == shard_id
            shard = self._shards[int(shard_id)]
            if deadline is not None and deadline.expired():
                unresolved.append(int(shard_id))
                continue
            try:
                faults.fire("shard.gather")
                with tracer.span("router.gather").set(
                        shard=int(shard_id), n=int(np.count_nonzero(mask))):
                    out[mask] = shard.lookup(vertices[mask])
            except FaultInjectedError:
                unresolved.append(int(shard_id))
                continue
            resolved[mask] = True
        if not unresolved:
            return out, []
        values = [int(theta) if ok else None
                  for theta, ok in zip(out, resolved)]
        return values, unresolved

    # ------------------------------------------------------------------
    # Threshold / ranking queries
    # ------------------------------------------------------------------
    def k_tip_size(self, k: int) -> int:
        """Number of vertices with tip number >= ``k`` (sum of shard counts)."""
        k = int(k)
        total = 0
        for shard in self._shards:
            position = int(np.searchsorted(shard.sorted_tips, k, side="left"))
            total += shard.n_vertices - position
        return total

    def k_tip_members(self, k: int, *, limit: int | None = None) -> np.ndarray:
        """Sorted member ids of the union of k-tips, merged across shards."""
        k = int(k)
        pieces = []
        tracer = current_tracer()
        for shard in self._shards:
            if shard.theta_max is None or shard.theta_max < k:
                continue
            position = int(np.searchsorted(shard.sorted_tips, k, side="left"))
            with tracer.span("router.k_tip").set(
                    shard=shard.shard_id, n=shard.n_vertices - position):
                pieces.append(shard.vertex_ids[position:])
        members = (np.concatenate(pieces) if pieces
                   else np.zeros(0, dtype=np.int64))
        # From here the arithmetic is TipIndex.k_tip_members verbatim: the
        # member *set* is identical, so sort/partition give identical bytes.
        if limit is None or limit >= members.size:
            return np.sort(members)
        if limit <= 0:
            return np.zeros(0, dtype=np.int64)
        return np.sort(np.partition(members, limit - 1)[:limit])

    def top_k(self, k: int) -> tuple[np.ndarray, np.ndarray]:
        """The ``k`` highest-θ vertices, gathered from the top shards down.

        Because shards are contiguous slices of the global θ-sorted order,
        concatenating the trailing shards reproduces the order's suffix
        exactly; once the suffix covers ``k`` vertices the unsharded
        boundary + tie-break arithmetic applies unchanged.
        """
        if k < 1:
            raise ServiceError(f"top-k requires k >= 1, got {k}")
        k = min(int(k), self.n_vertices)
        if k == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty
        suffix_ids: list[np.ndarray] = []
        suffix_tips: list[np.ndarray] = []
        covered = 0
        for shard in reversed(self._shards):
            if not shard.n_vertices:
                continue
            suffix_ids.append(shard.vertex_ids)
            suffix_tips.append(shard.sorted_tips)
            covered += shard.n_vertices
            if covered >= k:
                break
        ids = np.concatenate(list(reversed(suffix_ids)))
        tips = np.concatenate(list(reversed(suffix_tips)))
        boundary = int(tips[covered - k])
        # Levels never straddle shard cuts, so the boundary level lies
        # entirely inside the suffix: the bisection below sees every
        # boundary-θ vertex, exactly as the unsharded index does.
        first_at = int(np.searchsorted(tips, boundary, side="left"))
        first_above = int(np.searchsorted(tips, boundary, side="right"))
        above = ids[first_above:]
        at_boundary = np.sort(ids[first_at:first_above])[: k - above.size]
        selected = np.concatenate([above, at_boundary])
        selected_tips = np.concatenate([
            tips[first_above:],
            np.full(at_boundary.shape[0], boundary, dtype=np.int64),
        ])
        ranking = np.lexsort((selected, -selected_tips))
        return selected[ranking], selected_tips[ranking]

    def histogram(self) -> dict[int, int]:
        """Vertices per distinct tip number, concatenated shard histograms.

        Shard θ ranges are disjoint and ascending, so appending per-shard
        level counts in shard order yields the unsharded ascending dict.
        """
        merged: dict[int, int] = {}
        for shard in self._shards:
            counts = np.diff(shard.level_offsets)
            for value, count in zip(shard.level_values, counts):
                merged[int(value)] = int(count)
        return merged

    def levels(self) -> np.ndarray:
        """Sorted distinct tip numbers across all shards."""
        return self.level_values

    # ------------------------------------------------------------------
    # Unsupported surfaces
    # ------------------------------------------------------------------
    def communities(self, k: int, *, vertex: int | None = None):
        """Community extraction; delegated to the base index when present."""
        if self.base is not None:
            return self.base.communities(k, vertex=vertex)
        raise ServiceError(
            "this shard plan carries no graph arrays; community queries "
            "require the unsharded artifact", status=404,
        )

    def apply_delta(self, inserts=None, deletes=None, *, config=None):
        """Reject writes: shards are derived read replicas of an artifact."""
        raise ServiceError(
            "shard plans are read-only; apply updates to the source artifact "
            "(or through the replication leader) and re-plan", status=409,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Compact summary used by ``/stats`` and ``repro query``."""
        return {
            "side": self.side,
            "algorithm": self.algorithm,
            "n_vertices": self.n_vertices,
            "max_tip_number": self.max_tip_number,
            "n_levels": self.n_levels,
            "fingerprint": self.fingerprint,
            "has_graph": self.base is not None and self.base.graph is not None,
            "n_shards": self.n_shards,
            "shards": [shard.summary() for shard in self._shards],
        }


# ----------------------------------------------------------------------
# Planning (in memory and on disk)
# ----------------------------------------------------------------------
def plan_shards(
    artifact_path: str | Path, n_shards: int, *, mmap: bool = True
) -> ShardRouter:
    """Shard an artifact in memory; the persisted form is :func:`write_shard_plan`."""
    artifact = load_artifact(artifact_path, mmap=mmap)
    index = TipIndex.from_artifact(artifact)
    router = ShardRouter.from_index(
        index, n_shards, name=artifact.manifest.name)
    streaming = artifact.manifest.streaming
    router.base_fingerprint = str(
        streaming.get("base_fingerprint") or artifact.manifest.fingerprint)
    return router


def write_shard_plan(
    artifact_path: str | Path,
    out_dir: str | Path,
    n_shards: int,
    *,
    overwrite: bool = False,
) -> dict:
    """Split an artifact into a persisted shard-plan directory.

    Layout::

        my-plan.tipshards/
          plan.json            # kind, θ ranges, source fingerprints
          shard-000/arrays.npz # vertex_ids + local level CSR
          shard-001/arrays.npz
          ...

    The plan is staged in a temporary directory and promoted with one
    rename (two for an overwrite), mirroring the artifact writer's
    crash-safety contract.  Returns the plan payload.
    """
    out_dir = Path(out_dir)
    if out_dir.exists() and not overwrite:
        raise ArtifactError(
            f"shard plan path {out_dir} already exists; pass overwrite/--force "
            "to replace it"
        )
    router = plan_shards(artifact_path, n_shards)
    payload = {
        "format_version": SHARD_PLAN_FORMAT_VERSION,
        "kind": SHARD_PLAN_KIND,
        "created_unix": time.time(),
        "name": router.name,
        "source_artifact": str(artifact_path),
        "source_fingerprint": router.fingerprint,
        "base_fingerprint": router.base_fingerprint,
        "side": router.side,
        "algorithm": router.algorithm,
        "n_vertices": router.n_vertices,
        "max_tip_number": router.max_tip_number,
        "n_levels": router.n_levels,
        "requested_shards": int(n_shards),
        "n_shards": router.n_shards,
        "shards": [
            {**shard.summary(), "dir": f"shard-{shard.shard_id:03d}"}
            for shard in router.shards
        ],
    }
    payload["fingerprint"] = _plan_digest(payload)

    out_dir.parent.mkdir(parents=True, exist_ok=True)
    staging = Path(tempfile.mkdtemp(dir=out_dir.parent, prefix=f".{out_dir.name}.tmp-"))
    umask = os.umask(0)
    os.umask(umask)
    os.chmod(staging, 0o777 & ~umask)
    try:
        for shard in router.shards:
            shard_dir = staging / f"shard-{shard.shard_id:03d}"
            shard_dir.mkdir()
            np.savez(shard_dir / SHARD_ARRAYS_FILENAME, **shard.arrays())
        (staging / SHARD_PLAN_FILENAME).write_text(
            json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8")
        if out_dir.exists():
            graveyard = Path(tempfile.mkdtemp(
                dir=out_dir.parent, prefix=f".{out_dir.name}.old-"))
            displaced = graveyard / "plan"
            os.replace(out_dir, displaced)
            try:
                os.replace(staging, out_dir)
            except BaseException:
                os.replace(displaced, out_dir)
                raise
            finally:
                shutil.rmtree(graveyard, ignore_errors=True)
        else:
            os.replace(staging, out_dir)
    except BaseException:
        shutil.rmtree(staging, ignore_errors=True)
        raise
    return payload


def read_shard_plan(plan_dir: str | Path) -> dict:
    """Read and validate only a plan's ``plan.json`` (cheap, no arrays)."""
    plan_path = Path(plan_dir) / SHARD_PLAN_FILENAME
    try:
        payload = json.loads(plan_path.read_text(encoding="utf-8"))
    except FileNotFoundError as exc:
        raise ArtifactError(
            f"no shard plan at {plan_dir} (missing {SHARD_PLAN_FILENAME})") from exc
    except (OSError, json.JSONDecodeError) as exc:
        raise ArtifactError(f"cannot read shard plan {plan_path}: {exc}") from exc
    if not isinstance(payload, dict):
        raise ArtifactError(f"shard plan {plan_path} is not a JSON object")
    if payload.get("kind") != SHARD_PLAN_KIND:
        raise ArtifactError(
            f"shard plan {plan_path} has kind {payload.get('kind')!r}, "
            f"expected {SHARD_PLAN_KIND!r}")
    if int(payload.get("format_version", 0)) > SHARD_PLAN_FORMAT_VERSION:
        raise ArtifactError(
            f"shard plan {plan_path} has format version "
            f"{payload.get('format_version')}, this library supports "
            f"<= {SHARD_PLAN_FORMAT_VERSION}")
    return payload
