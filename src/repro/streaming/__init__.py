"""Streaming update engine: incremental butterfly/tip maintenance.

This package turns the repo's frozen-graph pipeline into a read-write
system: validated edge-update batches are applied as CSR patches
(:mod:`~repro.streaming.deltas`), butterfly supports are maintained
incrementally on the delta frontier (:mod:`~repro.streaming.support`), and
tip numbers are repaired by an exact bounded re-peel that falls back to a
full re-decomposition past a damage threshold
(:mod:`~repro.streaming.repair`).  The serving layer builds on this through
:meth:`repro.service.index.TipIndex.apply_delta`, the ``POST /update``
endpoint and the ``repro update`` command.
"""

from .deltas import EdgeBatch, apply_batch, validate_batch
from .repair import (
    StreamingConfig,
    StreamingUpdateResult,
    apply_update,
    butterfly_closure,
)
from .support import RegionDelta, region_butterflies, support_delta

__all__ = [
    "EdgeBatch",
    "apply_batch",
    "validate_batch",
    "RegionDelta",
    "region_butterflies",
    "support_delta",
    "StreamingConfig",
    "StreamingUpdateResult",
    "apply_update",
    "butterfly_closure",
]
