"""Batched edge-update log: validated insert/delete deltas + CSR patching.

A :class:`EdgeBatch` is one transactional unit of the update stream: a set
of edges to insert and a set to delete, always expressed in the graph's
canonical ``(u, v)`` orientation regardless of which side is being served.
Batches are validated *in full* against the current graph before anything
is touched, so a rejected batch is a no-op.

Applying a batch never rebuilds the graph from its edge list.  Both CSR
directions are patched in place-shape (delete = one compaction pass, insert
= one ``searchsorted`` + one splice, see :mod:`repro.kernels.csr`) and the
result is wrapped zero-copy with
:meth:`~repro.graph.bipartite.BipartiteGraph.from_csr_arrays`.  The patched
graph is bit-identical — CSR arrays and therefore fingerprint — to a graph
constructed from scratch on the updated edge set, which is what lets the
serving layer fingerprint-check repaired artifacts as if they were rebuilt.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import StreamingError
from ..graph.bipartite import BipartiteGraph
from ..kernels.csr import (
    csr_entry_keys,
    delete_csr_entries,
    insert_csr_entries,
    locate_csr_entries,
)

__all__ = ["EdgeBatch", "validate_batch", "apply_batch"]


def _as_edge_pairs(edges, label: str) -> np.ndarray:
    if edges is None:
        return np.zeros((0, 2), dtype=np.int64)
    array = np.asarray(edges, dtype=np.int64)
    if array.size == 0:
        return np.zeros((0, 2), dtype=np.int64)
    if array.ndim != 2 or array.shape[1] != 2:
        raise StreamingError(f"{label} edges must be (u, v) pairs, got shape {array.shape}")
    return array


@dataclass(frozen=True)
class EdgeBatch:
    """One batch of edge updates in canonical ``(u, v)`` orientation."""

    inserts: np.ndarray = field(default_factory=lambda: np.zeros((0, 2), dtype=np.int64))
    deletes: np.ndarray = field(default_factory=lambda: np.zeros((0, 2), dtype=np.int64))

    def __post_init__(self) -> None:
        object.__setattr__(self, "inserts", _as_edge_pairs(self.inserts, "insert"))
        object.__setattr__(self, "deletes", _as_edge_pairs(self.deletes, "delete"))

    @property
    def n_changes(self) -> int:
        return int(self.inserts.shape[0] + self.deletes.shape[0])

    @property
    def is_empty(self) -> bool:
        return self.n_changes == 0

    def changed_edges(self) -> np.ndarray:
        """All touched edges (inserts then deletes) as one ``(k, 2)`` array."""
        return np.concatenate([self.inserts, self.deletes], axis=0)

    @classmethod
    def from_lists(cls, inserts=None, deletes=None) -> "EdgeBatch":
        """Build a batch from any nested-sequence edge representation."""
        return cls(inserts=_as_edge_pairs(inserts, "insert"),
                   deletes=_as_edge_pairs(deletes, "delete"))


def _check_ranges(edges: np.ndarray, n_u: int, n_v: int, label: str) -> None:
    if edges.size == 0:
        return
    bad_u = (edges[:, 0] < 0) | (edges[:, 0] >= n_u)
    bad_v = (edges[:, 1] < 0) | (edges[:, 1] >= n_v)
    if bad_u.any() or bad_v.any():
        u, v = edges[(bad_u | bad_v)][0]
        raise StreamingError(
            f"{label} edge ({int(u)}, {int(v)}) out of range for a graph with "
            f"n_u={n_u}, n_v={n_v}"
        )


def validate_batch(
    graph: BipartiteGraph, batch: EdgeBatch, *, entry_keys: np.ndarray | None = None
) -> None:
    """Check a batch against the graph; raise :class:`StreamingError` if invalid.

    Rules: every id in range, no edge repeated within or across the two
    lists, every insert currently absent, every delete currently present.
    The whole batch is validated before any patching, so callers can treat
    ``apply_batch`` as transactional.  ``entry_keys`` may carry the graph's
    prebuilt U-side :func:`~repro.kernels.csr.csr_entry_keys` array.
    """
    n_u, n_v = graph.n_u, graph.n_v
    _check_ranges(batch.inserts, n_u, n_v, "insert")
    _check_ranges(batch.deletes, n_u, n_v, "delete")

    keys_ins = batch.inserts[:, 0] * np.int64(n_v) + batch.inserts[:, 1]
    keys_del = batch.deletes[:, 0] * np.int64(n_v) + batch.deletes[:, 1]
    for keys, label in ((keys_ins, "insert"), (keys_del, "delete")):
        if np.unique(keys).shape[0] != keys.shape[0]:
            raise StreamingError(f"batch lists the same {label} edge more than once")
    if np.intersect1d(keys_ins, keys_del).size:
        raise StreamingError(
            "an edge appears in both the insert and the delete list of one batch; "
            "split the revert across two batches"
        )

    u_offsets, u_neighbors = graph.csr("U")
    if entry_keys is None:
        entry_keys = csr_entry_keys(u_offsets, u_neighbors, n_v)
    _, present = locate_csr_entries(
        u_offsets, u_neighbors, batch.inserts[:, 0], batch.inserts[:, 1], n_v,
        entry_keys=entry_keys,
    )
    if present.any():
        u, v = batch.inserts[present][0]
        raise StreamingError(f"insert edge ({int(u)}, {int(v)}) already exists")
    _, present = locate_csr_entries(
        u_offsets, u_neighbors, batch.deletes[:, 0], batch.deletes[:, 1], n_v,
        entry_keys=entry_keys,
    )
    if not present.all():
        u, v = batch.deletes[~present][0]
        raise StreamingError(f"delete edge ({int(u)}, {int(v)}) does not exist")


def apply_batch(
    graph: BipartiteGraph, batch: EdgeBatch, *, validate: bool = True
) -> BipartiteGraph:
    """Apply a batch as CSR patches and return the updated graph.

    Deletes are applied before inserts (the two sets are disjoint, so the
    order only matters for intermediate array sizes).  Vertex-set sizes are
    fixed: streams mutate edges, not the id space.  Each side's entry-key
    array is built once and shared between validation and that side's first
    patch, so a batch costs three O(E) key passes instead of five.
    """
    u_offsets, u_neighbors = graph.csr("U")
    v_offsets, v_neighbors = graph.csr("V")
    n_u, n_v = graph.n_u, graph.n_v
    u_keys = csr_entry_keys(u_offsets, u_neighbors, n_v) if batch.n_changes else None
    if validate:
        validate_batch(graph, batch, entry_keys=u_keys)
    if batch.is_empty:
        return graph
    v_keys = csr_entry_keys(v_offsets, v_neighbors, n_u)

    if batch.deletes.shape[0]:
        u_offsets, u_neighbors = delete_csr_entries(
            u_offsets, u_neighbors, batch.deletes[:, 0], batch.deletes[:, 1], n_v,
            entry_keys=u_keys,
        )
        v_offsets, v_neighbors = delete_csr_entries(
            v_offsets, v_neighbors, batch.deletes[:, 1], batch.deletes[:, 0], n_u,
            entry_keys=v_keys,
        )
        u_keys = v_keys = None  # the arrays just changed
    if batch.inserts.shape[0]:
        u_offsets, u_neighbors = insert_csr_entries(
            u_offsets, u_neighbors, batch.inserts[:, 0], batch.inserts[:, 1], n_v,
            entry_keys=u_keys,
        )
        v_offsets, v_neighbors = insert_csr_entries(
            v_offsets, v_neighbors, batch.inserts[:, 1], batch.inserts[:, 0], n_u,
            entry_keys=v_keys,
        )
    return BipartiteGraph.from_csr_arrays(
        n_u, n_v, u_offsets, u_neighbors, v_offsets, v_neighbors, name=graph.name
    )
