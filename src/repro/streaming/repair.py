"""Bounded tip-number repair: re-peel only what an update batch can reach.

Exactness argument (the hypothesis suite and the CI streaming gate assert it
bit-for-bit against from-scratch peeling):

* **Frozen prefix.**  Let *dirty* be the frontier vertices whose butterfly
  count or pairwise shared-butterfly counts changed
  (:class:`~repro.streaming.support.RegionDelta`), each with floor
  ``s(a) = θ_old(a) + min(0, Δ⋈(a))``.  While bottom-up peeling of the new
  graph stays below ``min s(a)``, every dirty vertex receives exactly the
  updates of the old run shifted by its own ``Δ⋈`` (its sub-floor partners
  are clean, so shared counts are unchanged), keeping its support at or
  above its floor; clean vertices evolve identically.  Every vertex with
  ``θ_old`` below the floor therefore keeps its tip number.

* **Component-confined suffix.**  Peeling the suffix ``{θ_old >= k}``
  decomposes into independent peels of the butterfly-connected components
  of the subgraph induced on it (support updates travel only between
  vertices sharing a butterfly).  A component with no dirty vertex has
  unchanged membership, supports and pair counts — a changed pair would
  have made its endpoints dirty — so its peel replays the old one.  Only
  components containing dirty vertices are re-peeled, with initial supports
  equal to their butterfly counts inside the induced subgraph — exactly
  RECEIPT FD's ``⋈init`` construction (Alg. 4).

* **Floor grouping.**  Dirty vertices with distant floors usually live in
  unrelated parts of the butterfly topology, so seeds are grouped by floor
  and each group is closed within its own suffix ``{θ_old >= k_group}``.
  Groups whose closures collide merge (taking the lower floor) and re-close
  — the fixpoint nests the prefix argument per region, so a low-floor seed
  in a far-away corner no longer drags the whole high-θ core into its mask.

The re-peel region's wedge work is capped by a configurable damage
threshold; past it (tracked *while* the closure grows, so a runaway region
is abandoned early) the repair falls back to a full re-decomposition.  The
fallback reuses the incrementally maintained per-vertex butterfly counts of
both sides when available, skipping the global re-count phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..butterfly.counting import ButterflyCounts, count_per_vertex_priority
from ..core.receipt import tip_decomposition
from ..errors import DecompositionError
from ..graph.bipartite import BipartiteGraph, opposite_side, validate_side
from ..kernels.peel import count_pair_wedges
from ..kernels.wedges import gather_batch_wedges
from ..kernels.workspace import WedgeWorkspace, workspace_or_default
from ..obs.trace import current_tracer
from ..peeling.base import PeelingCounters
from ..peeling.bup import peel_sequential
from .deltas import EdgeBatch, apply_batch
from .support import RegionDelta, support_delta

__all__ = [
    "StreamingConfig",
    "StreamingUpdateResult",
    "butterfly_closure",
    "apply_update",
]

#: Update modes, from cheapest to most expensive.
MODE_CLEAN = "clean"
MODE_INCREMENTAL = "incremental"
MODE_FULL = "full"


@dataclass(frozen=True)
class StreamingConfig:
    """Tuning knobs of the streaming update engine.

    Attributes
    ----------
    damage_threshold:
        Fraction of the graph's total wedge work the re-peel region may
        reach before the repair abandons the closure and falls back to a
        full re-decomposition.
    peel_kernel:
        Support-update kernel for the localized re-peel (``"batched"`` or
        ``"reference"``; both yield identical tip numbers).
    full_algorithm:
        Decomposition algorithm of the full fallback (``"receipt"``,
        ``"bup"`` or ``"parb"``).
    full_kwargs:
        Extra keyword arguments for the fallback (e.g. ``n_partitions``).
    validate:
        Validate batches against the graph before applying (disable only
        when the caller already validated).
    max_group_rounds:
        Cap on closure/merge fixpoint rounds before conceding to the full
        fallback (each round can only merge floor groups, so the cap is a
        safety valve, not a tuning target).
    """

    damage_threshold: float = 0.5
    peel_kernel: str = "batched"
    full_algorithm: str = "receipt"
    full_kwargs: dict = field(default_factory=dict)
    validate: bool = True
    max_group_rounds: int = 8


@dataclass
class StreamingUpdateResult:
    """Outcome of applying one edge batch to a served decomposition."""

    graph: BipartiteGraph
    side: str
    tip_numbers: np.ndarray
    butterflies: np.ndarray
    mode: str
    k_seed: int
    n_frontier: int
    n_dirty: int
    n_repeeled: int
    damage_ratio: float
    inserted: int
    deleted: int
    center_butterflies: np.ndarray | None = None
    counters: PeelingCounters = field(default_factory=PeelingCounters)

    def summary(self) -> dict:
        """JSON-able digest used by the ``/update`` endpoint and the CLI."""
        return {
            "mode": self.mode,
            "inserted": self.inserted,
            "deleted": self.deleted,
            "k_seed": self.k_seed,
            "frontier_vertices": self.n_frontier,
            "dirty_vertices": self.n_dirty,
            "repeeled_vertices": self.n_repeeled,
            "frozen_vertices": int(self.tip_numbers.shape[0] - self.n_repeeled),
            "damage_ratio": round(float(self.damage_ratio), 6),
            "wedges_traversed": self.counters.wedges_traversed,
            "elapsed_seconds": self.counters.elapsed_seconds,
        }


def butterfly_closure(
    graph: BipartiteGraph,
    side: str,
    seeds: np.ndarray,
    mask: np.ndarray,
    *,
    work: np.ndarray | None = None,
    work_budget: int | None = None,
    workspace: WedgeWorkspace | None = None,
) -> tuple[np.ndarray | None, int]:
    """Vertices butterfly-connected to ``seeds`` within the masked subset.

    Breadth-first expansion along butterfly-partner pairs (two vertices
    sharing at least two centers, i.e. at least one butterfly), restricted
    to vertices where ``mask`` is ``True``.  Each frontier expands through
    one wedge gather plus one pair count, so the cost is the wedge
    neighborhood of the returned component — never the whole graph.

    With ``work``/``work_budget`` given, the expansion is abandoned — the
    first element of the result is ``None`` — as soon as the visited set's
    accumulated per-vertex work exceeds the budget, so a region that is
    going to trip the damage threshold anyway never pays for its own full
    traversal.  The second element is always the wedge endpoints touched.
    """
    side = validate_side(side)
    workspace = workspace_or_default(workspace)
    seeds = np.asarray(seeds, dtype=np.int64)
    peel_offsets, peel_neighbors = graph.csr(side)
    center_offsets, center_neighbors = graph.csr(opposite_side(side))

    visited = np.zeros(graph.side_size(side), dtype=bool)
    visited[seeds] = True
    unvisited_in_mask = mask & ~visited
    frontier = seeds
    wedges = 0
    visited_work = int(work[seeds].sum()) if work is not None else 0
    while frontier.size:
        if work_budget is not None and visited_work > work_budget:
            return None, wedges
        endpoints, endpoints_per_vertex = gather_batch_wedges(
            peel_offsets, peel_neighbors, center_offsets, center_neighbors, frontier,
            workspace=workspace,
        )
        wedges += int(endpoints.size)
        pairs = count_pair_wedges(
            endpoints,
            np.arange(frontier.shape[0], dtype=np.int64),
            endpoints_per_vertex,
            frontier,
            unvisited_in_mask,
            workspace=workspace,
        )
        frontier = np.unique(pairs.endpoints)
        visited[frontier] = True
        unvisited_in_mask[frontier] = False
        if work is not None and frontier.size:
            visited_work += int(work[frontier].sum())
    return np.flatnonzero(visited).astype(np.int64), wedges


def _floor_groups(seeds: np.ndarray, floors: np.ndarray) -> list[tuple[int, np.ndarray]]:
    """Group dirty seeds into ``(k, seeds)`` buckets by floor magnitude.

    One bucket per power-of-two floor band keeps the group count (and with
    it the closure rounds) logarithmic in ``θ_max`` while seeds with
    similar floors — which overwhelmingly share a region anyway — are
    closed together from the start.  Each bucket's level is the lowest
    floor it contains, so bucketing never unfreezes too little.
    """
    bands = np.int64(np.maximum(floors, 0) + 1)
    bits = np.zeros(bands.shape[0], dtype=np.int64)
    remaining = bands.copy()
    while np.any(remaining > 1):
        high = remaining > 1
        bits[high] += 1
        remaining[high] >>= 1
    groups = []
    for band in np.unique(bits):
        members = bits == band
        groups.append((int(floors[members].min()), seeds[members]))
    return groups


def _merge_groups(
    groups: list[tuple[int, np.ndarray]],
    regions: list[np.ndarray],
    n_side: int,
) -> list[tuple[int, np.ndarray]] | None:
    """Merge floor groups whose closures overlap; ``None`` when already stable.

    Two overlapping regions must be re-peeled together at the lower floor
    (their butterfly interactions cross the higher group's mask), so their
    seed sets are unioned and the closure fixpoint runs another round.
    """
    parent = list(range(len(groups)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    stamp = np.full(n_side, -1, dtype=np.int64)
    merged = False
    for index, region in enumerate(regions):
        hits = np.unique(stamp[region])
        for other in hits[hits >= 0]:
            root_a, root_b = find(index), find(int(other))
            if root_a != root_b:
                parent[root_b] = root_a
                merged = True
        stamp[region] = find(index)
    if not merged:
        return None
    combined: dict[int, list[int]] = {}
    for index in range(len(groups)):
        combined.setdefault(find(index), []).append(index)
    return [
        (
            min(groups[i][0] for i in members),
            np.unique(np.concatenate([groups[i][1] for i in members])),
        )
        for members in combined.values()
    ]


def _repair_region(
    new_graph: BipartiteGraph,
    side: str,
    dirty: np.ndarray,
    floors: np.ndarray,
    tip_numbers: np.ndarray,
    work: np.ndarray,
    work_budget: int,
    max_rounds: int,
    workspace: WedgeWorkspace | None = None,
) -> tuple[list[tuple[int, np.ndarray]] | None, int]:
    """Resolve the re-peel regions, or ``None`` when damage exceeds the budget.

    Returns ``([(k, region_vertices), ...], wedges)``: disjoint
    butterfly-closed regions, each carrying the floor level its suffix mask
    froze at.
    """
    groups = _floor_groups(dirty, floors)
    wedges_total = 0
    for _ in range(max_rounds):
        regions = []
        union_work = 0
        for level, seeds in groups:
            region, wedges = butterfly_closure(
                new_graph, side, seeds, tip_numbers >= level,
                work=work, work_budget=work_budget, workspace=workspace,
            )
            wedges_total += wedges
            if region is None or wedges_total > work_budget:
                # Either one region tripped the damage threshold or the
                # closure/merge search itself has spent more traversal than
                # the threshold allows — stop probing and re-peel fully.
                return None, wedges_total
            union_work += int(work[region].sum())
            if union_work > work_budget:
                # Regions are not yet deduplicated, so this overshoots only
                # when the true union is close to the budget anyway.
                return None, wedges_total
            regions.append(region)
        merged = _merge_groups(groups, regions, tip_numbers.shape[0])
        if merged is None:
            return list(zip((level for level, _ in groups), regions)), wedges_total
        groups = merged
    return None, wedges_total


def _full_redecomposition(
    new_graph: BipartiteGraph,
    side: str,
    maintained: np.ndarray,
    maintained_center: np.ndarray | None,
    config: StreamingConfig,
) -> tuple[np.ndarray, np.ndarray, PeelingCounters]:
    """The fallback path: decompose the updated graph from scratch.

    When both sides' butterfly counts have been maintained incrementally
    they are handed to the decomposition, which skips the global re-count
    phase (the cross-side sum invariant was already checked when they were
    maintained).  Otherwise the fresh count doubles as an integrity check
    on the maintained peeled-side supports — a mismatch means the
    maintenance layer has a bug and must fail loudly rather than keep
    serving drifted counts.
    """
    kwargs = dict(config.full_kwargs)
    if maintained_center is not None:
        u_counts = maintained if side == "U" else maintained_center
        v_counts = maintained_center if side == "U" else maintained
        kwargs["counts"] = ButterflyCounts(
            u_counts=u_counts, v_counts=v_counts,
            wedges_traversed=0, algorithm="streaming-maintained",
        )
    result = tip_decomposition(
        new_graph, side,
        algorithm=config.full_algorithm,
        peel_kernel=config.peel_kernel,
        **kwargs,
    )
    if not np.array_equal(result.initial_butterflies, maintained):
        raise DecompositionError(
            "incrementally maintained butterfly counts disagree with a fresh "
            "count of the updated graph"
        )
    return result.tip_numbers, result.initial_butterflies, result.counters


def apply_update(
    graph: BipartiteGraph,
    side: str,
    tip_numbers: np.ndarray,
    butterflies: np.ndarray,
    batch: EdgeBatch,
    *,
    center_butterflies: np.ndarray | None = None,
    config: StreamingConfig | None = None,
) -> StreamingUpdateResult:
    """Apply one edge batch to a decomposition, repairing tip numbers.

    Parameters
    ----------
    graph:
        The graph the decomposition was computed on.
    side:
        The decomposed side.
    tip_numbers, butterflies:
        The current exact tip numbers and per-vertex butterfly counts of
        ``side`` (e.g. from a served :class:`~repro.service.index.TipIndex`).
    batch:
        Validated-on-entry edge updates in ``(u, v)`` orientation.
    center_butterflies:
        Optional per-vertex butterfly counts of the *other* side.  When
        given they are maintained incrementally too and let the full
        fallback skip its global re-count phase.
    config:
        Tuning knobs; defaults to :class:`StreamingConfig`.

    Returns
    -------
    StreamingUpdateResult
        The patched graph plus exact updated tip numbers and butterfly
        counts, with mode/size/work statistics for observability.
    """
    config = config or StreamingConfig()
    side = validate_side(side)
    counters = PeelingCounters()
    tracer = current_tracer()
    update_span = tracer.timed("streaming.update", side=side)
    with update_span:
        # One fresh arena per update: every recount, closure expansion and
        # localized re-peel of this batch reuses the same buffers, and the
        # update's counters report the arena's exact high-water mark.
        workspace = WedgeWorkspace()
        tip_numbers = np.asarray(tip_numbers, dtype=np.int64)
        butterflies = np.asarray(butterflies, dtype=np.int64)
        n_side = graph.side_size(side)
        if tip_numbers.shape[0] != n_side or butterflies.shape[0] != n_side:
            raise DecompositionError(
                f"tip numbers / butterfly counts do not match side {side!r} "
                f"({tip_numbers.shape[0]} / {butterflies.shape[0]} entries, "
                f"expected {n_side})"
            )

        new_graph = apply_batch(graph, batch, validate=config.validate)

        def _result(mode, new_tips, new_counts, new_center, *, k_seed=0,
                    delta: RegionDelta | None = None, n_repeeled=0, damage=0.0):
            # ``update_span`` is still open here (the closure runs inside the
            # with-block), so the elapsed read and the span share one clock.
            counters.elapsed_seconds = update_span.elapsed()
            counters.peak_scratch_bytes = max(
                counters.peak_scratch_bytes, workspace.peak_scratch_bytes
            )
            if update_span.recording:
                update_span.set(mode=mode, n_repeeled=int(n_repeeled),
                                wedges_traversed=counters.wedges_traversed,
                                peak_scratch_bytes=counters.peak_scratch_bytes)
            return StreamingUpdateResult(
                graph=new_graph,
                side=side,
                tip_numbers=new_tips,
                butterflies=new_counts,
                center_butterflies=new_center,
                mode=mode,
                k_seed=int(k_seed),
                n_frontier=0 if delta is None else int(delta.scanned.shape[0]),
                n_dirty=0 if delta is None else int(delta.dirty.shape[0]),
                n_repeeled=int(n_repeeled),
                damage_ratio=float(damage),
                inserted=int(batch.inserts.shape[0]),
                deleted=int(batch.deletes.shape[0]),
                counters=counters,
            )

        if batch.is_empty:
            return _result(MODE_CLEAN, tip_numbers, butterflies, center_butterflies)

        # 1. Exact support maintenance on the delta frontier (both sides when
        #    the center counts are being carried along).
        with tracer.span("streaming.support_delta"):
            delta = support_delta(graph, new_graph, batch, side, workspace=workspace)
            counters.wedges_traversed += delta.wedges_traversed
            counters.counting_wedges += delta.wedges_traversed
            new_butterflies = delta.apply_to(butterflies)
            new_center = None
            if center_butterflies is not None:
                center_delta = support_delta(graph, new_graph, batch,
                                             opposite_side(side), workspace=workspace)
                counters.wedges_traversed += center_delta.wedges_traversed
                counters.counting_wedges += center_delta.wedges_traversed
                new_center = center_delta.apply_to(center_butterflies)

        if new_center is not None and int(new_butterflies.sum()) != int(new_center.sum()):
            # Both sides of every butterfly carry two of its four vertices, so
            # the per-side count sums must agree; a mismatch means one side's
            # maintenance drifted and must fail loudly before it is persisted.
            raise DecompositionError(
                "incrementally maintained butterfly counts disagree across sides"
            )

        dirty = delta.dirty_vertices
        if dirty.size == 0:
            # No butterfly was created or destroyed and no pairwise shared count
            # moved: peeling would replay bit-for-bit, so don't.
            return _result(MODE_CLEAN, tip_numbers, new_butterflies, new_center,
                           delta=delta)

        # 2. Safe frozen floors and the re-peel regions they admit.
        floors = np.maximum(tip_numbers[dirty] + np.minimum(0, delta.delta), 0)
        k_seed = int(floors.min())
        work = new_graph.wedge_work_per_vertex(side)
        total_work = int(work.sum())
        work_budget = int(config.damage_threshold * total_work)
        with tracer.span("streaming.repair_region"):
            regions, closure_wedges = _repair_region(
                new_graph, side, dirty, floors, tip_numbers, work, work_budget,
                config.max_group_rounds, workspace=workspace,
            )
        counters.wedges_traversed += closure_wedges
        counters.peeling_wedges += closure_wedges

        if regions is None:
            with tracer.span("streaming.full_rebuild"):
                new_tips, new_counts, full_counters = _full_redecomposition(
                    new_graph, side, new_butterflies, new_center, config
                )
            counters.merge(full_counters)
            return _result(MODE_FULL, new_tips, new_counts, new_center, k_seed=k_seed,
                           delta=delta, n_repeeled=n_side, damage=1.0)

        # 3. Localized exact re-peel per region: FD-style induced subgraph
        #    + ⋈init (Alg. 4), everything else keeps its old tip number.
        working = new_graph if side == "U" else new_graph.swap_sides()
        new_tips = tip_numbers.copy()
        n_repeeled = 0
        damage = 0.0
        for level, region in regions:
            damage += float(work[region].sum() / total_work) if total_work else 0.0
            n_repeeled += int(region.shape[0])
            with tracer.span("streaming.repeel_region") as region_span:
                induced = working.induced_on_u_subset(region)
                counts = count_per_vertex_priority(induced.graph, workspace=workspace)
                counters.wedges_traversed += counts.wedges_traversed
                counters.counting_wedges += counts.wedges_traversed
                region_tips, peel_counters, _ = peel_sequential(
                    induced.graph, "U", counts.u_counts,
                    peel_kernel=config.peel_kernel, workspace=workspace,
                )
                counters.merge(peel_counters)
            if region_span.recording:
                region_span.set(n_vertices=int(region.shape[0]), level=int(level))
            if region_tips.size and int(region_tips.min()) < level:
                # The localized peel crossed its own frozen boundary —
                # theoretically impossible; recompute from scratch rather than
                # serve a bad repair.
                with tracer.span("streaming.full_rebuild"):
                    new_tips, new_counts, full_counters = _full_redecomposition(
                        new_graph, side, new_butterflies, new_center, config
                    )
                counters.merge(full_counters)
                return _result(MODE_FULL, new_tips, new_counts, new_center,
                               k_seed=k_seed, delta=delta, n_repeeled=n_side,
                               damage=1.0)
            new_tips[induced.u_old_of_new] = region_tips
        return _result(MODE_INCREMENTAL, new_tips, new_butterflies, new_center,
                       k_seed=k_seed, delta=delta, n_repeeled=n_repeeled,
                       damage=damage)
