"""Incremental butterfly-support maintenance for edge-update batches.

Every butterfly created or destroyed by a batch contains a changed edge
``(u, v)``, and the butterfly's two peeled-side vertices are ``u`` and a
neighbor of ``v`` — so every vertex *pair* whose shared-butterfly count
moves has at least one endpoint among the batch's peeled-side endpoints.
Maintenance therefore only recounts those endpoints (≤ batch size, never
the whole neighborhood):

* :func:`~repro.kernels.wedges.iter_batch_wedge_chunks` streams their
  two-hop wedge multiset on each graph version in wedge-budgeted chunks,
* :func:`~repro.kernels.peel.count_pair_wedges` groups each chunk into
  per-(vertex, partner) shared-butterfly counts ``C(wedges, 2)``,
* differencing the two sparse pair maps yields exactly the pairs that
  changed, the per-vertex count deltas, and the *dirty* vertex set that
  seeds tip-number repair (:mod:`repro.streaming.repair`).

Cost is the wedge neighborhood of the changed edges' endpoints — a batch
that touches no butterfly at all (the common case for fringe churn) is
detected here and short-circuits the repair entirely.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.bipartite import BipartiteGraph, opposite_side, validate_side
from ..kernels.csr import gather_rows, int_bincount
from ..kernels.peel import count_pair_wedges
from ..kernels.wedges import iter_batch_wedge_chunks
from ..kernels.workspace import WedgeWorkspace, workspace_or_default
from .deltas import EdgeBatch

__all__ = ["RegionDelta", "region_butterflies", "support_delta"]


@dataclass(frozen=True)
class RegionDelta:
    """Support changes of one batch on one side's butterfly counts.

    Attributes
    ----------
    side:
        The peeled side the counts refer to.
    scanned:
        The recounted vertices: peeled-side endpoints of the changed edges.
    dirty:
        Sorted vertices participating in at least one pair whose
        shared-butterfly count changed.  Only dirty vertices can influence
        peeling; a batch with no dirty vertex provably leaves every tip
        number unchanged.
    delta:
        Per-dirty-vertex butterfly-count change (aligned with
        :attr:`dirty`; zero when a vertex's created and destroyed
        butterflies cancel).
    wedges_traversed:
        Wedge endpoints touched by the two recounts (the paper's work
        unit, charged to the streaming counters).
    """

    side: str
    scanned: np.ndarray
    dirty: np.ndarray
    delta: np.ndarray
    wedges_traversed: int

    @property
    def dirty_vertices(self) -> np.ndarray:
        """Vertices that can influence peeling (sorted ids)."""
        return self.dirty

    def apply_to(self, butterflies: np.ndarray) -> np.ndarray:
        """Return a copy of a per-vertex count array with the delta applied."""
        updated = np.array(butterflies, dtype=np.int64, copy=True)
        updated[self.dirty] += self.delta
        return updated


def region_butterflies(
    graph: BipartiteGraph,
    side: str,
    vertices: np.ndarray,
    *,
    workspace: WedgeWorkspace | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Exact butterfly counts of a vertex subset, plus the pair signature.

    Returns ``(counts, pair_keys, pair_butterflies, wedges)``:
    ``counts[i]`` is the full butterfly count of ``vertices[i]`` in
    ``graph``; ``pair_keys`` (sorted ``position * n_side + partner``) and
    ``pair_butterflies`` describe every partner pair carrying at least one
    shared butterfly.  Work is the subset's wedge neighborhood only, and
    the wedge multiset streams through the shared pipeline in budget-capped
    chunks (pairs are keyed by subset position, so chunk results
    concatenate into the same sorted signature a monolithic pass builds).
    """
    side = validate_side(side)
    workspace = workspace_or_default(workspace)
    vertices = np.asarray(vertices, dtype=np.int64)
    n_side = graph.side_size(side)
    empty = np.zeros(0, dtype=np.int64)
    if vertices.size == 0:
        return np.zeros(0, dtype=np.int64), empty, empty, 0

    peel_offsets, peel_neighbors = graph.csr(side)
    center_offsets, center_neighbors = graph.csr(opposite_side(side))
    all_alive = np.ones(n_side, dtype=bool)
    centers, centers_per_vertex = gather_rows(peel_offsets, peel_neighbors, vertices)

    counts = np.zeros(vertices.shape[0], dtype=np.int64)
    key_pieces: list[np.ndarray] = []
    butterfly_pieces: list[np.ndarray] = []
    wedges = 0
    for lo, hi, endpoints, chunk_lengths in iter_batch_wedge_chunks(
        centers, centers_per_vertex, center_offsets, center_neighbors,
        workspace=workspace,
    ):
        wedges += int(endpoints.shape[0])
        # Positions stay global (not rebased) so the pair keys of all
        # chunks form one ascending signature over the whole subset.
        positions = np.arange(lo, hi, dtype=np.int64)
        pairs = count_pair_wedges(
            endpoints, positions, chunk_lengths, vertices, all_alive,
            filter_alive=False, workspace=workspace,
        )
        counts += int_bincount(pairs.segments, pairs.decrements, vertices.shape[0])
        if pairs.segments.size:
            key_pieces.append(pairs.segments * np.int64(n_side) + pairs.endpoints)
            butterfly_pieces.append(pairs.decrements)
    pair_keys = np.concatenate(key_pieces) if key_pieces else empty
    pair_butterflies = np.concatenate(butterfly_pieces) if butterfly_pieces else empty
    return counts, pair_keys, pair_butterflies, wedges


def support_delta(
    old_graph: BipartiteGraph,
    new_graph: BipartiteGraph,
    batch: EdgeBatch,
    side: str,
    *,
    workspace: WedgeWorkspace | None = None,
) -> RegionDelta:
    """Compute the batch's exact peeled-side support changes.

    Recounts the changed edges' peeled-side endpoints on both graph
    versions and differences the sparse pair maps.  Every changed pair has
    an endpoint among the recounted vertices, so the diff is complete.
    """
    side = validate_side(side)
    workspace = workspace_or_default(workspace)
    edges = batch.changed_edges()
    column = 0 if side == "U" else 1
    scanned = np.unique(edges[:, column]).astype(np.int64)
    n_side = old_graph.side_size(side)

    _, keys_old, pairs_old, wedges_old = region_butterflies(
        old_graph, side, scanned, workspace=workspace
    )
    _, keys_new, pairs_new, wedges_new = region_butterflies(
        new_graph, side, scanned, workspace=workspace
    )

    # Sparse sorted key → shared-butterfly maps (absent = zero); the union
    # with per-key differencing yields every changed pair exactly once per
    # owning scanned vertex.
    all_keys = np.union1d(keys_old, keys_new)
    value_old = np.zeros(all_keys.shape[0], dtype=np.int64)
    value_old[np.searchsorted(all_keys, keys_old)] = pairs_old
    value_new = np.zeros(all_keys.shape[0], dtype=np.int64)
    value_new[np.searchsorted(all_keys, keys_new)] = pairs_new
    changed = value_old != value_new
    changed_keys = all_keys[changed]
    pair_delta = value_new[changed] - value_old[changed]

    if changed_keys.size == 0:
        empty = np.zeros(0, dtype=np.int64)
        return RegionDelta(side=side, scanned=scanned, dirty=empty, delta=empty,
                           wedges_traversed=wedges_old + wedges_new)

    owners = scanned[changed_keys // n_side]
    partners = changed_keys % n_side

    # A changed pair contributes its delta to both endpoints.  Pairs whose
    # two endpoints are both scanned appear twice in the diff (once per
    # owner), so the owner-side contribution is only added when the partner
    # is not itself scanned.
    delta_full = np.zeros(n_side, dtype=np.int64)
    np.add.at(delta_full, partners, pair_delta)
    partner_scanned = np.isin(partners, scanned)
    outward = ~partner_scanned
    if outward.any():
        np.add.at(delta_full, owners[outward], pair_delta[outward])

    dirty = np.unique(np.concatenate([owners, partners]))
    return RegionDelta(
        side=side,
        scanned=scanned,
        dirty=dirty,
        delta=delta_full[dirty],
        wedges_traversed=wedges_old + wedges_new,
    )
