"""Wing decomposition (edge peeling) extension."""

from .decomposition import (
    WingDecompositionResult,
    receipt_wing_decomposition,
    wing_decomposition,
)

__all__ = [
    "WingDecompositionResult",
    "receipt_wing_decomposition",
    "wing_decomposition",
]
