"""Wing decomposition (edge peeling) — the extension discussed in Sec. 7.

Wing decomposition is the edge analogue of tip decomposition: the *wing
number* of an edge is the largest ``k`` for which the edge belongs to a
``k``-wing, a maximal butterfly-connected subgraph in which every edge
participates in at least ``k`` butterflies.  The paper notes that RECEIPT's
two-step strategy carries over to edge peeling; this module provides

* :func:`wing_decomposition` — sequential bottom-up edge peeling (the
  baseline of Sariyuce & Pinar / Shi & Shun), and
* :func:`receipt_wing_decomposition` — a coarse/fine two-step variant in the
  spirit of RECEIPT: edges are first partitioned into wing-number ranges by
  range peeling, then each partition is peeled exactly and independently on
  the subgraph its edges induce.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..butterfly.per_edge import EdgeButterflyCounts, count_per_edge
from ..graph.bipartite import BipartiteGraph
from ..obs.trace import current_tracer
from ..peeling.base import PeelingCounters
from ..peeling.minheap import LazyMinHeap

__all__ = ["WingDecompositionResult", "wing_decomposition", "receipt_wing_decomposition"]


@dataclass
class WingDecompositionResult:
    """Wing numbers for every edge plus run statistics."""

    edges: np.ndarray
    wing_numbers: np.ndarray
    initial_butterflies: np.ndarray
    algorithm: str
    counters: PeelingCounters = field(default_factory=PeelingCounters)
    extra: dict = field(default_factory=dict)

    @property
    def n_edges(self) -> int:
        return int(self.edges.shape[0])

    @property
    def max_wing_number(self) -> int:
        return int(self.wing_numbers.max()) if self.wing_numbers.size else 0

    def as_dict(self) -> dict[tuple[int, int], int]:
        """Wing numbers keyed by ``(u, v)``."""
        return {
            (int(u), int(v)): int(wing)
            for (u, v), wing in zip(self.edges, self.wing_numbers)
        }

    def same_wing_numbers(self, other: "WingDecompositionResult") -> bool:
        return bool(np.array_equal(self.wing_numbers, other.wing_numbers))


class _EdgePeelState:
    """Shared machinery for enumerating butterflies incident on an edge."""

    def __init__(self, graph: BipartiteGraph, counts: EdgeButterflyCounts):
        self.graph = graph
        self.edges = counts.edges
        self.supports = counts.counts.astype(np.int64).copy()
        self.edge_index = counts.edge_index()
        self.alive = np.ones(self.edges.shape[0], dtype=bool)
        self.counters = PeelingCounters()

    def other_edges_of_butterflies(self, edge_id: int) -> np.ndarray:
        """Flat array of the other-edge ids over all alive butterflies of ``edge_id``."""
        triples = self.butterflies_of_edge(edge_id)
        if not triples:
            return np.zeros(0, dtype=np.int64)
        return np.asarray(triples, dtype=np.int64).ravel()

    def apply_edge_decrements(
        self, others: np.ndarray, threshold: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Apply one peeled edge's unit decrements in a single grouped pass.

        Every occurrence of an alive edge in ``others`` removes one
        butterfly, clamped from below at ``threshold`` — the edge analogue
        of the batched :class:`~repro.peeling.update.SupportUpdate`
        application.  ``support_updates`` accounts one unit per decrement
        actually applied, exactly as the sequential per-butterfly loop did.
        Returns ``(updated_edges, new_supports)``.
        """
        others = others[self.alive[others]]
        if others.size == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty
        unique_edges, lost = np.unique(others, return_counts=True)
        old = self.supports[unique_edges]
        new = np.maximum(threshold, old - lost)
        changed = new < old
        unique_edges = unique_edges[changed]
        new = new[changed]
        self.counters.support_updates += int((self.supports[unique_edges] - new).sum())
        self.supports[unique_edges] = new
        return unique_edges, new

    def butterflies_of_edge(self, edge_id: int) -> list[tuple[int, int, int]]:
        """Other-edge triples of every alive butterfly containing ``edge_id``.

        For edge ``(u, v)`` a butterfly is completed by ``u' ∈ N(v)`` and
        ``v' ∈ N(u)`` with ``(u', v') ∈ E``; the returned triples are the
        edge ids of ``(u, v')``, ``(u', v)`` and ``(u', v')``.  Only
        butterflies whose three other edges are all alive count.
        """
        u, v = (int(x) for x in self.edges[edge_id])
        graph = self.graph
        triples: list[tuple[int, int, int]] = []
        neighbors_u = graph.neighbors_u(u)
        neighbors_v = graph.neighbors_v(v)
        self.counters.wedges_traversed += int(neighbors_u.size + neighbors_v.size)
        for u_prime in neighbors_v:
            u_prime = int(u_prime)
            if u_prime == u:
                continue
            edge_uprime_v = self.edge_index[(u_prime, v)]
            if not self.alive[edge_uprime_v]:
                continue
            common = np.intersect1d(neighbors_u, graph.neighbors_u(u_prime), assume_unique=True)
            self.counters.wedges_traversed += int(graph.degree_u(u_prime))
            for v_prime in common:
                v_prime = int(v_prime)
                if v_prime == v:
                    continue
                edge_u_vprime = self.edge_index[(u, v_prime)]
                edge_uprime_vprime = self.edge_index[(u_prime, v_prime)]
                if self.alive[edge_u_vprime] and self.alive[edge_uprime_vprime]:
                    triples.append((edge_u_vprime, edge_uprime_v, edge_uprime_vprime))
        return triples


def wing_decomposition(
    graph: BipartiteGraph,
    *,
    counts: EdgeButterflyCounts | None = None,
) -> WingDecompositionResult:
    """Sequential bottom-up edge peeling for wing numbers.

    Complexity is dominated by re-enumerating the butterflies of every
    peeled edge; suitable for the moderate graph sizes this reproduction
    targets (the paper's Bit-BU indexing is out of scope).
    """
    run_span = current_tracer().timed("wing.bup")
    with run_span:
        if counts is None:
            counts = count_per_edge(graph)
        state = _EdgePeelState(graph, counts)
        state.counters.wedges_traversed += counts.wedges_traversed
        state.counters.counting_wedges += counts.wedges_traversed

        wing_numbers = np.zeros(state.edges.shape[0], dtype=np.int64)
        heap = LazyMinHeap(state.supports)

        while heap:
            edge_id, support = heap.pop_min()
            wing_numbers[edge_id] = support
            state.alive[edge_id] = False
            state.counters.vertices_peeled += 1
            state.counters.synchronization_rounds += 1

            updated, new_supports = state.apply_edge_decrements(
                state.other_edges_of_butterflies(edge_id), support
            )
            heap.decrease_many(updated, new_supports)

    state.counters.elapsed_seconds = run_span.duration
    return WingDecompositionResult(
        edges=state.edges,
        wing_numbers=wing_numbers,
        initial_butterflies=counts.counts.copy(),
        algorithm="wing-BUP",
        counters=state.counters,
    )


def receipt_wing_decomposition(
    graph: BipartiteGraph,
    *,
    n_partitions: int = 8,
    counts: EdgeButterflyCounts | None = None,
) -> WingDecompositionResult:
    """Two-step (RECEIPT-style) wing decomposition.

    Step 1 partitions edges into ``n_partitions`` wing-number ranges by
    range peeling: every iteration deletes *all* edges whose support lies in
    the current range and decrements the supports of the other edges of
    their butterflies (clamped at the range lower bound).  Step 2 peels each
    partition exactly, restricted to butterflies whose four edges live in
    the partition or beyond, using the support snapshot taken when the
    partition's range was opened.

    This follows the paper's Sec. 7 sketch; edge-peel conflicts (two edges
    of the same butterfly peeled in one iteration) are resolved by the
    deterministic edge-id priority the paper suggests.
    """
    tracer = current_tracer()
    run_span = tracer.timed("wing.receipt", n_partitions=n_partitions)
    with run_span:
        if counts is None:
            counts = count_per_edge(graph)
        state = _EdgePeelState(graph, counts)
        state.counters.wedges_traversed += counts.wedges_traversed
        state.counters.counting_wedges += counts.wedges_traversed

        n_edges = state.edges.shape[0]
        wing_numbers = np.zeros(n_edges, dtype=np.int64)
        if n_edges == 0:
            state.counters.elapsed_seconds = run_span.elapsed()
            return WingDecompositionResult(
                edges=state.edges, wing_numbers=wing_numbers,
                initial_butterflies=counts.counts.copy(),
                algorithm="wing-RECEIPT", counters=state.counters,
            )

        init_supports = state.supports.copy()
        partitions: list[np.ndarray] = []
        bounds: list[int] = [0]

        # ---- Step 1: coarse range partitioning over edges -------------------
        with tracer.span("wing.partition"):
            remaining = int(n_edges)
            while remaining > 0 and len(partitions) < n_partitions:
                alive_ids = np.flatnonzero(state.alive)
                init_supports[alive_ids] = state.supports[alive_ids]
                lower = bounds[-1]
                # Target: split the remaining edges evenly across remaining
                # ranges.
                remaining_partitions = n_partitions - len(partitions)
                order = np.argsort(state.supports[alive_ids], kind="stable")
                take = max(1, alive_ids.size // remaining_partitions)
                upper = int(
                    state.supports[alive_ids[order[min(take, alive_ids.size) - 1]]]
                ) + 1
                upper = max(upper, lower + 1)

                member_pieces: list[np.ndarray] = []
                active = alive_ids[state.supports[alive_ids] < upper]
                while active.size:
                    state.counters.synchronization_rounds += 1
                    member_pieces.append(active)
                    # Priority ordering (Sec. 7): edges of the batch are peeled
                    # in ascending edge id and each edge is marked dead only
                    # when its turn comes, so for a butterfly with several
                    # batch edges exactly the lowest-id one propagates the
                    # update to the surviving edges.
                    for edge_id in np.sort(active):
                        state.alive[edge_id] = False
                        state.apply_edge_decrements(
                            state.other_edges_of_butterflies(int(edge_id)), lower
                        )
                    alive_ids = np.flatnonzero(state.alive)
                    active = alive_ids[state.supports[alive_ids] < upper]
                partition = (
                    np.concatenate(member_pieces) if member_pieces
                    else np.zeros(0, dtype=np.int64)
                )
                partitions.append(partition)
                bounds.append(upper)
                remaining = int(state.alive.sum())

            leftovers = np.flatnonzero(state.alive)
            if leftovers.size:
                init_supports[leftovers] = state.supports[leftovers]
                partitions.append(leftovers)
                bounds.append(int(state.supports[leftovers].max()) + 1)

        # ---- Step 2: exact peeling inside each partition ---------------------
        # A fresh peel state is used; butterflies are only counted towards an
        # edge when all four edges belong to the same or a later partition,
        # which mirrors FD's induced-subgraph restriction.
        with tracer.span("wing.exact_peel"):
            partition_of_edge = np.full(n_edges, len(partitions), dtype=np.int64)
            for index, partition in enumerate(partitions):
                partition_of_edge[partition] = index

            exact_state = _EdgePeelState(graph, counts)
            # Keep accumulating into the same counters.
            exact_state.counters = state.counters
            # Allocated once; each iteration fills its partition's slots and
            # resets only those, keeping the whole step-2 bookkeeping
            # O(n_edges) total rather than O(P * n_edges).
            local_of_edge = np.full(n_edges, -1, dtype=np.int64)
            for index, partition in enumerate(partitions):
                if partition.size == 0:
                    continue
                supports = init_supports[partition].copy()
                local_of_edge[partition] = np.arange(partition.size, dtype=np.int64)
                exact_state.alive[:] = partition_of_edge >= index
                heap = LazyMinHeap(supports)
                while heap:
                    position, support = heap.pop_min()
                    edge_id = int(partition[position])
                    wing_numbers[edge_id] = support
                    exact_state.alive[edge_id] = False
                    others = exact_state.other_edges_of_butterflies(edge_id)
                    others = others[
                        (local_of_edge[others] >= 0) & exact_state.alive[others]
                    ]
                    if others.size:
                        positions, lost = np.unique(
                            local_of_edge[others], return_counts=True
                        )
                        old = supports[positions]
                        new = np.maximum(support, old - lost)
                        changed = new < old
                        supports[positions[changed]] = new[changed]
                        heap.decrease_many(positions[changed], new[changed])
                local_of_edge[partition] = -1

    state.counters.elapsed_seconds = run_span.duration
    return WingDecompositionResult(
        edges=state.edges,
        wing_numbers=wing_numbers,
        initial_butterflies=counts.counts.copy(),
        algorithm="wing-RECEIPT",
        counters=state.counters,
        extra={"bounds": bounds, "partition_sizes": [int(p.size) for p in partitions]},
    )
