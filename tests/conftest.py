"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.generators import (
    affiliation_graph,
    nested_tip_hierarchy,
    planted_blocks,
    power_law_bipartite,
    random_bipartite,
)
from repro.graph.builders import complete_bipartite, empty_graph, from_edge_list, star


@pytest.fixture
def tiny_graph():
    """A small hand-constructed 8x7 graph in the style of the paper's Fig. 2.

    Vertices u1..u8 map to 0..7 and v1..v7 to 0..6; it contains a mix of
    butterfly-dense and butterfly-free vertices.
    """
    edges = [
        (0, 0), (0, 1),                      # u1: v1, v2
        (1, 0), (1, 1), (1, 2), (1, 3),      # u2: v1, v2, v3, v4
        (2, 1), (2, 2), (2, 3), (2, 4), (2, 5),  # u3
        (3, 1), (3, 3), (3, 4), (3, 5), (3, 6),  # u4
        (4, 2), (4, 3), (4, 4), (4, 5),      # u5
        (5, 1), (5, 3), (5, 4), (5, 5), (5, 6),  # u6
        (6, 2), (6, 3),                      # u7
        (7, 5), (7, 2),                      # u8
    ]
    return from_edge_list(edges, n_u=8, n_v=7, name="fig2")


@pytest.fixture
def complete_4x3():
    """Complete bipartite graph K_{4,3} with closed-form butterfly counts."""
    return complete_bipartite(4, 3)


@pytest.fixture
def star_graph():
    """Star with 6 leaves on the U side; zero butterflies."""
    return star(6, center_side="V")


@pytest.fixture
def empty():
    return empty_graph(5, 4)


@pytest.fixture
def blocks_graph():
    """Planted dense blocks over a random background (medium test graph)."""
    return planted_blocks(60, 40, [(10, 8), (8, 6), (6, 5)], background_edges=80, seed=5)


@pytest.fixture
def hierarchy_graph():
    """Deterministic nested structure with a non-trivial tip hierarchy."""
    return nested_tip_hierarchy(n_levels=3, base_u=4, base_v=3, growth=2)


@pytest.fixture
def community_graph():
    """Affiliation-style graph: overlapping user/group communities."""
    return affiliation_graph(80, 40, 12, community_size_u=12, community_size_v=5,
                             membership_probability=0.7, background_edges=60, seed=9)


@pytest.fixture
def medium_random_graph():
    """Skewed random graph large enough to exercise every code path."""
    return power_law_bipartite(300, 120, 1500, exponent_u=2.3, exponent_v=1.9, seed=42)


@pytest.fixture
def random_graph_factory():
    """Factory producing reproducible random graphs of a requested size."""

    def factory(n_u: int = 20, n_v: int = 20, n_edges: int = 60, seed: int = 0):
        return random_bipartite(n_u, n_v, n_edges, seed=seed)

    return factory


@pytest.fixture
def rng():
    return np.random.default_rng(1234)
