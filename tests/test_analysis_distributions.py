"""Unit tests for tip-number distribution summaries (Fig. 4)."""

import numpy as np
import pytest

from repro.analysis.distributions import cumulative_fraction_below, tip_distribution
from repro.graph.builders import complete_bipartite, star
from repro.peeling.base import TipDecompositionResult
from repro.peeling.bup import bup_decomposition


def _result_from_tips(tips):
    tips = np.asarray(tips, dtype=np.int64)
    return TipDecompositionResult(
        tip_numbers=tips, side="U", initial_butterflies=tips, algorithm="synthetic"
    )


class TestTipDistribution:
    def test_uniform_tips(self):
        distribution = tip_distribution(_result_from_tips([5, 5, 5]))
        assert distribution.values.tolist() == [5]
        assert distribution.vertex_counts.tolist() == [3]
        assert distribution.cumulative_fraction.tolist() == [1.0]
        assert distribution.max_tip == 5

    def test_cumulative_fractions_monotone(self, blocks_graph):
        result = bup_decomposition(blocks_graph, "U")
        distribution = tip_distribution(result)
        assert np.all(np.diff(distribution.cumulative_fraction) > 0)
        assert distribution.cumulative_fraction[-1] == pytest.approx(1.0)

    def test_fraction_below(self):
        distribution = tip_distribution(_result_from_tips([0, 1, 2, 3]))
        assert distribution.fraction_below(-1) == 0.0
        assert distribution.fraction_below(0) == pytest.approx(0.25)
        assert distribution.fraction_below(1.5) == pytest.approx(0.5)
        assert distribution.fraction_below(10) == pytest.approx(1.0)

    def test_skew_ratio_for_heavy_tail(self):
        # 999 vertices at tip 1 and one at tip 10000: the paper's skew story.
        tips = [1] * 999 + [10_000]
        distribution = tip_distribution(_result_from_tips(tips))
        assert distribution.skew_ratio < 0.01
        assert distribution.percentile_99_9 <= 10_000

    def test_empty_result(self):
        distribution = tip_distribution(_result_from_tips([]))
        assert distribution.max_tip == 0
        assert distribution.values.size == 0

    def test_series_pairs(self):
        distribution = tip_distribution(_result_from_tips([2, 2, 7]))
        series = distribution.series()
        assert series[0] == (2, pytest.approx(2 / 3))
        assert series[-1] == (7, pytest.approx(1.0))

    def test_star_distribution_all_zero(self):
        result = bup_decomposition(star(5), "U")
        distribution = tip_distribution(result)
        assert distribution.values.tolist() == [0]
        assert distribution.max_tip == 0

    def test_complete_graph_single_level(self):
        result = bup_decomposition(complete_bipartite(4, 3), "U")
        distribution = tip_distribution(result)
        assert distribution.values.tolist() == [9]


class TestCumulativeFractionBelow:
    def test_thresholds(self):
        result = _result_from_tips([0, 5, 10])
        fractions = cumulative_fraction_below(result, np.array([0, 5, 10, 100]))
        assert fractions.tolist() == pytest.approx([1 / 3, 2 / 3, 1.0, 1.0])
