"""Unit tests for k-tip hierarchy construction and queries."""

import numpy as np

from repro.analysis.hierarchy import TipHierarchy, butterfly_connected_components, k_tip_vertices
from repro.graph.builders import complete_bipartite, from_edge_list
from repro.peeling.bup import bup_decomposition


def _two_disjoint_blocks():
    """Two complete 3x3 blocks with no connection between them."""
    edges = []
    for u in range(3):
        for v in range(3):
            edges.append((u, v))
            edges.append((u + 3, v + 3))
    return from_edge_list(edges, n_u=6, n_v=6)


class TestKTipVertices:
    def test_threshold_filtering(self, blocks_graph):
        result = bup_decomposition(blocks_graph, "U")
        k = max(1, result.max_tip_number // 2)
        members = k_tip_vertices(result, k)
        assert np.all(result.tip_numbers[members] >= k)

    def test_zero_threshold_includes_everyone(self, blocks_graph):
        result = bup_decomposition(blocks_graph, "U")
        assert k_tip_vertices(result, 0).size == blocks_graph.n_u


class TestButterflyConnectedComponents:
    def test_complete_graph_single_component(self):
        graph = complete_bipartite(4, 3)
        components = butterfly_connected_components(graph, np.arange(4), "U")
        assert len(components) == 1
        assert components[0].tolist() == [0, 1, 2, 3]

    def test_disjoint_blocks_two_components(self):
        graph = _two_disjoint_blocks()
        components = butterfly_connected_components(graph, np.arange(6), "U")
        assert len(components) == 2
        assert sorted(tuple(c.tolist()) for c in components) == [(0, 1, 2), (3, 4, 5)]

    def test_wedge_only_connection_is_not_enough(self):
        # u0 and u1 share exactly one neighbour: a wedge but no butterfly.
        graph = from_edge_list([(0, 0), (0, 1), (1, 1), (1, 2)], n_u=2, n_v=3)
        components = butterfly_connected_components(graph, np.arange(2), "U")
        assert len(components) == 2

    def test_empty_vertex_set(self, blocks_graph):
        assert butterfly_connected_components(blocks_graph, np.array([], dtype=np.int64)) == []

    def test_subset_restriction(self):
        graph = complete_bipartite(5, 3)
        components = butterfly_connected_components(graph, np.array([0, 4]), "U")
        assert len(components) == 1
        assert components[0].tolist() == [0, 4]


class TestTipHierarchy:
    def test_levels_are_distinct_tip_numbers(self, blocks_graph):
        result = bup_decomposition(blocks_graph, "U")
        hierarchy = TipHierarchy(blocks_graph, result)
        assert hierarchy.levels.tolist() == np.unique(result.tip_numbers).tolist()

    def test_level_sizes_monotone_decreasing(self, blocks_graph):
        result = bup_decomposition(blocks_graph, "U")
        hierarchy = TipHierarchy(blocks_graph, result)
        sizes = [hierarchy.level_sizes()[int(level)] for level in hierarchy.levels]
        assert sizes == sorted(sizes, reverse=True)

    def test_vertices_at_nested(self, community_graph):
        result = bup_decomposition(community_graph, "U")
        hierarchy = TipHierarchy(community_graph, result)
        levels = hierarchy.levels
        if levels.size >= 2:
            low, high = int(levels[0]), int(levels[-1])
            assert set(hierarchy.vertices_at(high).tolist()) <= set(hierarchy.vertices_at(low).tolist())

    def test_strongest_tip_members_have_max_tip_number(self, blocks_graph):
        result = bup_decomposition(blocks_graph, "U")
        hierarchy = TipHierarchy(blocks_graph, result)
        strongest = hierarchy.strongest_tip()
        if result.max_tip_number > 0:
            assert np.all(result.tip_numbers[strongest] == result.max_tip_number)

    def test_subgraph_at_level(self, blocks_graph):
        result = bup_decomposition(blocks_graph, "U")
        hierarchy = TipHierarchy(blocks_graph, result)
        k = max(1, result.max_tip_number)
        induced = hierarchy.subgraph_at(k)
        assert induced.graph.n_u == hierarchy.vertices_at(k).size

    def test_subgraph_at_level_v_side(self, blocks_graph):
        result = bup_decomposition(blocks_graph, "V")
        hierarchy = TipHierarchy(blocks_graph, result)
        k = max(1, result.max_tip_number)
        induced = hierarchy.subgraph_at(k)
        assert induced.graph.n_u == hierarchy.vertices_at(k).size

    def test_tips_at_level_cover_level_vertices(self, blocks_graph):
        result = bup_decomposition(blocks_graph, "U")
        hierarchy = TipHierarchy(blocks_graph, result)
        k = max(1, result.max_tip_number // 2)
        tips = hierarchy.tips_at(k)
        covered = sorted(int(v) for tip in tips for v in tip)
        assert covered == sorted(hierarchy.vertices_at(k).tolist())
