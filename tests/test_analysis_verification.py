"""Unit tests for decomposition verification helpers."""

import numpy as np
import pytest

from repro.analysis.verification import (
    check_basic_invariants,
    check_k_tip_property,
    compare_results,
    verify_against_bup,
)
from repro.core.receipt import receipt_decomposition
from repro.peeling.base import TipDecompositionResult
from repro.peeling.bup import bup_decomposition


class TestBasicInvariants:
    def test_valid_result_passes(self, blocks_graph):
        result = bup_decomposition(blocks_graph, "U")
        report = check_basic_invariants(blocks_graph, result)
        assert report.passed
        assert report.failures == []

    def test_wrong_size_detected(self, blocks_graph):
        result = TipDecompositionResult(
            tip_numbers=np.zeros(3), side="U", initial_butterflies=np.zeros(3), algorithm="bad"
        )
        report = check_basic_invariants(blocks_graph, result)
        assert not report.passed

    def test_tip_above_butterfly_count_detected(self, blocks_graph):
        result = bup_decomposition(blocks_graph, "U")
        corrupted = TipDecompositionResult(
            tip_numbers=result.initial_butterflies + 1,
            side="U",
            initial_butterflies=result.initial_butterflies,
            algorithm="bad",
        )
        report = check_basic_invariants(blocks_graph, corrupted)
        assert not report.passed
        assert any("butterfly count" in failure for failure in report.failures)

    def test_nonzero_tip_for_butterfly_free_vertex_detected(self, star_graph):
        result = TipDecompositionResult(
            tip_numbers=np.ones(star_graph.n_u, dtype=np.int64),
            side="U",
            initial_butterflies=np.ones(star_graph.n_u, dtype=np.int64),
            algorithm="bad",
        )
        # initial_butterflies wrongly claims butterflies; rebuild with zeros.
        result.initial_butterflies = np.zeros(star_graph.n_u, dtype=np.int64)
        report = check_basic_invariants(star_graph, result)
        assert not report.passed


class TestKTipProperty:
    def test_correct_result_passes(self, blocks_graph):
        result = bup_decomposition(blocks_graph, "U")
        assert check_k_tip_property(blocks_graph, result).passed

    def test_correct_result_passes_v_side(self, blocks_graph):
        result = bup_decomposition(blocks_graph, "V")
        assert check_k_tip_property(blocks_graph, result).passed

    def test_inflated_tip_numbers_fail(self, blocks_graph):
        result = bup_decomposition(blocks_graph, "U")
        inflated = TipDecompositionResult(
            tip_numbers=result.tip_numbers * 10 + 5,
            side="U",
            initial_butterflies=result.initial_butterflies * 10 + 5,
            algorithm="bad",
        )
        assert not check_k_tip_property(blocks_graph, inflated).passed

    def test_level_subset_check(self, blocks_graph):
        result = bup_decomposition(blocks_graph, "U")
        top_level = np.array([result.max_tip_number])
        assert check_k_tip_property(blocks_graph, result, levels=top_level).passed


class TestComparisons:
    def test_identical_results_agree(self, blocks_graph):
        first = bup_decomposition(blocks_graph, "U")
        second = bup_decomposition(blocks_graph, "U")
        assert compare_results(first, second).passed

    def test_different_sides_flagged(self, blocks_graph):
        first = bup_decomposition(blocks_graph, "U")
        second = bup_decomposition(blocks_graph, "V")
        report = compare_results(first, second)
        assert not report.passed
        assert "different sides" in report.failures[0]

    def test_differing_values_flagged(self, blocks_graph):
        first = bup_decomposition(blocks_graph, "U")
        second = bup_decomposition(blocks_graph, "U")
        second.tip_numbers = second.tip_numbers.copy()
        second.tip_numbers[0] += 1
        report = compare_results(first, second)
        assert not report.passed
        assert "vertex 0" in report.failures[0]

    def test_verify_against_bup(self, community_graph):
        receipt = receipt_decomposition(community_graph, "U", n_partitions=4)
        assert verify_against_bup(community_graph, receipt).passed

    def test_report_merge(self, blocks_graph):
        first = bup_decomposition(blocks_graph, "U")
        good = compare_results(first, first)
        bad = compare_results(first, bup_decomposition(blocks_graph, "V"))
        merged = good.merge(bad)
        assert not merged.passed
        assert len(merged.failures) == len(bad.failures)
