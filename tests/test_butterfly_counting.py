"""Unit tests for butterfly counting kernels."""

import numpy as np
import pytest

from repro.butterfly.counting import (
    count_per_vertex,
    count_per_vertex_parallel,
    count_per_vertex_priority,
    count_total_butterflies,
)
from repro.butterfly.naive import (
    count_butterflies_exhaustive,
    count_per_vertex_wedge,
    count_per_vertex_wedge_restricted,
    enumerate_butterflies,
)
from repro.datasets.generators import random_bipartite
from repro.errors import ReproError
from repro.graph.builders import complete_bipartite, empty_graph, from_edge_list, star
from repro.parallel.threadpool import ExecutionContext


class TestExhaustiveEnumeration:
    def test_single_butterfly(self):
        graph = complete_bipartite(2, 2)
        butterflies = list(enumerate_butterflies(graph))
        assert butterflies == [(0, 1, 0, 1)]

    def test_complete_graph_count(self):
        graph = complete_bipartite(4, 3)
        _, _, total = count_butterflies_exhaustive(graph)
        assert total == 6 * 3  # C(4,2) * C(3,2)

    def test_star_has_no_butterflies(self):
        graph = star(5, center_side="V")
        u_counts, v_counts, total = count_butterflies_exhaustive(graph)
        assert total == 0
        assert u_counts.sum() == 0
        assert v_counts.sum() == 0

    def test_per_vertex_counts_complete(self):
        graph = complete_bipartite(3, 3)
        u_counts, v_counts, total = count_butterflies_exhaustive(graph)
        # Each U vertex is in C(2,1)... specifically (n_u-1 choose 1)*(C(n_v,2)).
        assert u_counts.tolist() == [2 * 3] * 3
        assert v_counts.tolist() == [2 * 3] * 3
        assert total == 9


class TestVertexPriorityCounting:
    def test_matches_exhaustive_on_fixtures(self, tiny_graph, blocks_graph, hierarchy_graph):
        for graph in (tiny_graph, blocks_graph, hierarchy_graph):
            counts = count_per_vertex_priority(graph)
            u_expected, v_expected, total = count_butterflies_exhaustive(graph)
            assert np.array_equal(counts.u_counts, u_expected)
            assert np.array_equal(counts.v_counts, v_expected)
            assert counts.total_butterflies == total

    def test_matches_exhaustive_on_random_graphs(self):
        rng = np.random.default_rng(7)
        for _ in range(10):
            n_u, n_v = int(rng.integers(2, 25)), int(rng.integers(2, 25))
            graph = random_bipartite(
                n_u, n_v, int(rng.integers(1, min(80, n_u * n_v + 1))),
                seed=int(rng.integers(1_000_000)),
            )
            counts = count_per_vertex_priority(graph)
            u_expected, v_expected, _ = count_butterflies_exhaustive(graph)
            assert np.array_equal(counts.u_counts, u_expected)
            assert np.array_equal(counts.v_counts, v_expected)

    def test_empty_graph(self):
        counts = count_per_vertex_priority(empty_graph(3, 3))
        assert counts.total_butterflies == 0
        assert counts.wedges_traversed == 0

    def test_single_edge(self):
        counts = count_per_vertex_priority(from_edge_list([(0, 0)]))
        assert counts.total_butterflies == 0

    def test_wedge_bound_respected(self, blocks_graph):
        counts = count_per_vertex_priority(blocks_graph)
        assert counts.wedges_traversed <= blocks_graph.counting_wedge_bound()

    def test_side_sums_agree(self, blocks_graph):
        counts = count_per_vertex_priority(blocks_graph)
        # Each butterfly has two vertices on each side.
        assert counts.u_counts.sum() == counts.v_counts.sum()
        assert counts.u_counts.sum() == 2 * counts.total_butterflies

    def test_counts_accessor(self, blocks_graph):
        counts = count_per_vertex_priority(blocks_graph)
        assert np.array_equal(counts.counts("U"), counts.u_counts)
        assert np.array_equal(counts.counts("v"), counts.v_counts)


class TestWedgeAggregationCounting:
    def test_matches_priority(self, blocks_graph):
        priority = count_per_vertex_priority(blocks_graph)
        wedge_u, _ = count_per_vertex_wedge(blocks_graph, "U")
        wedge_v, _ = count_per_vertex_wedge(blocks_graph, "V")
        assert np.array_equal(priority.u_counts, wedge_u)
        assert np.array_equal(priority.v_counts, wedge_v)

    def test_traverses_more_wedges_than_priority(self, medium_random_graph):
        priority = count_per_vertex_priority(medium_random_graph)
        _, wedge_traversed = count_per_vertex_wedge(medium_random_graph, "U")
        assert wedge_traversed >= priority.wedges_traversed / 2

    def test_restricted_counting_full_mask_matches(self, blocks_graph):
        full_mask = np.ones(blocks_graph.n_u, dtype=bool)
        restricted, _ = count_per_vertex_wedge_restricted(blocks_graph, "U", full_mask)
        unrestricted, _ = count_per_vertex_wedge(blocks_graph, "U")
        assert np.array_equal(restricted, unrestricted)

    def test_restricted_counting_matches_induced_subgraph(self, blocks_graph):
        mask = np.zeros(blocks_graph.n_u, dtype=bool)
        mask[: blocks_graph.n_u // 2] = True
        restricted, _ = count_per_vertex_wedge_restricted(blocks_graph, "U", mask)
        induced = blocks_graph.induced_on_u_subset(np.flatnonzero(mask))
        induced_counts = count_per_vertex_priority(induced.graph)
        assert np.array_equal(restricted[np.flatnonzero(mask)], induced_counts.u_counts)
        assert restricted[~mask].sum() == 0


class TestParallelCounting:
    def test_matches_sequential(self, blocks_graph, community_graph):
        for graph in (blocks_graph, community_graph):
            sequential = count_per_vertex_priority(graph)
            parallel = count_per_vertex_parallel(graph)
            assert np.array_equal(sequential.u_counts, parallel.u_counts)
            assert np.array_equal(sequential.v_counts, parallel.v_counts)
            assert sequential.wedges_traversed == parallel.wedges_traversed

    def test_with_real_threads(self, blocks_graph):
        context = ExecutionContext(4, use_real_threads=True)
        with context:
            parallel = count_per_vertex_parallel(blocks_graph, context)
        sequential = count_per_vertex_priority(blocks_graph)
        assert np.array_equal(sequential.u_counts, parallel.u_counts)
        assert np.array_equal(sequential.v_counts, parallel.v_counts)

    def test_records_parallel_regions(self, blocks_graph):
        context = ExecutionContext(2)
        count_per_vertex_parallel(blocks_graph, context)
        names = [region.name for region in context.parallel_regions]
        assert "pvBcnt[U]" in names
        assert "pvBcnt[V]" in names


class TestDispatcher:
    def test_algorithms_agree(self, blocks_graph):
        results = {
            name: count_per_vertex(blocks_graph, algorithm=name)
            for name in ("vertex-priority", "parallel", "wedge")
        }
        baseline = results["vertex-priority"]
        for name, counts in results.items():
            assert np.array_equal(counts.u_counts, baseline.u_counts), name
            assert np.array_equal(counts.v_counts, baseline.v_counts), name

    def test_unknown_algorithm_rejected(self, blocks_graph):
        with pytest.raises(ReproError, match="unknown"):
            count_per_vertex(blocks_graph, algorithm="magic")

    def test_count_total_butterflies(self, complete_4x3):
        assert count_total_butterflies(complete_4x3) == 6 * 3
