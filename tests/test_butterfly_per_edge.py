"""Unit tests for per-edge butterfly counting."""

import numpy as np

from repro.butterfly.naive import enumerate_butterflies
from repro.butterfly.per_edge import count_per_edge
from repro.datasets.generators import random_bipartite
from repro.graph.builders import complete_bipartite, empty_graph, star


def _expected_edge_counts(graph):
    """Ground truth: explicitly enumerate butterflies and attribute to edges."""
    expected = {}
    for u, v in graph.edges():
        expected[(u, v)] = 0
    for u1, u2, v1, v2 in enumerate_butterflies(graph):
        for edge in ((u1, v1), (u1, v2), (u2, v1), (u2, v2)):
            expected[edge] += 1
    return expected


class TestPerEdgeCounting:
    def test_complete_graph(self):
        graph = complete_bipartite(3, 3)
        counts = count_per_edge(graph)
        # Every edge of K_{3,3} is in (3-1)*(3-1) = 4 butterflies.
        assert counts.counts.tolist() == [4] * 9
        assert counts.total_butterflies == 9

    def test_star_has_zero_counts(self):
        graph = star(5, center_side="V")
        counts = count_per_edge(graph)
        assert counts.counts.sum() == 0
        assert counts.total_butterflies == 0

    def test_empty_graph(self):
        counts = count_per_edge(empty_graph(3, 3))
        assert counts.edges.shape == (0, 2)
        assert counts.counts.size == 0

    def test_matches_exhaustive_on_fixtures(self, tiny_graph, blocks_graph):
        for graph in (tiny_graph, blocks_graph):
            counts = count_per_edge(graph)
            expected = _expected_edge_counts(graph)
            observed = counts.as_dict()
            assert observed == expected

    def test_matches_exhaustive_on_random_graphs(self):
        rng = np.random.default_rng(3)
        for _ in range(8):
            n_u, n_v = int(rng.integers(2, 15)), int(rng.integers(2, 15))
            graph = random_bipartite(
                n_u, n_v, int(rng.integers(1, min(50, n_u * n_v + 1))),
                seed=int(rng.integers(1_000_000)),
            )
            counts = count_per_edge(graph)
            assert counts.as_dict() == _expected_edge_counts(graph)

    def test_total_consistent_with_vertex_counts(self, blocks_graph):
        from repro.butterfly.counting import count_total_butterflies

        counts = count_per_edge(blocks_graph)
        assert counts.total_butterflies == count_total_butterflies(blocks_graph)

    def test_edge_index_alignment(self, tiny_graph):
        counts = count_per_edge(tiny_graph)
        index = counts.edge_index()
        for position, (u, v) in enumerate(counts.edges):
            assert index[(int(u), int(v))] == position
        assert len(index) == tiny_graph.n_edges
