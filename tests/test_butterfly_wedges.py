"""Unit tests for wedge-level utilities."""

import numpy as np

from repro.butterfly.wedges import (
    iterate_wedges,
    pair_wedge_count,
    shared_butterflies,
    total_wedges,
    wedge_counts_from_vertex,
)
from repro.graph.builders import complete_bipartite, star


class TestWedgeCountsFromVertex:
    def test_complete_graph(self):
        graph = complete_bipartite(4, 3)
        counts, traversed = wedge_counts_from_vertex(graph, 0, "U")
        # Every other U vertex shares all 3 V neighbours; self entry zeroed.
        assert counts[0] == 0
        assert counts[1:].tolist() == [3, 3, 3]
        assert traversed == 3 * 4  # 3 centers each of degree 4

    def test_star_has_wedges_but_no_self(self):
        graph = star(5, center_side="V")
        counts, traversed = wedge_counts_from_vertex(graph, 0, "U")
        assert counts[0] == 0
        assert counts[1:].tolist() == [1, 1, 1, 1]
        assert traversed == 5

    def test_isolated_vertex(self):
        from repro.graph.bipartite import BipartiteGraph

        graph = BipartiteGraph(3, 2, [(0, 0), (1, 0)])
        counts, traversed = wedge_counts_from_vertex(graph, 2, "U")
        assert counts.sum() == 0
        assert traversed == 0

    def test_v_side(self):
        graph = complete_bipartite(3, 4)
        counts, _ = wedge_counts_from_vertex(graph, 1, "V")
        assert counts[1] == 0
        assert counts[[0, 2, 3]].tolist() == [3, 3, 3]


class TestPairCounts:
    def test_pair_wedge_count(self, tiny_graph):
        for u1 in range(tiny_graph.n_u):
            for u2 in range(tiny_graph.n_u):
                if u1 == u2:
                    continue
                expected = np.intersect1d(
                    tiny_graph.neighbors_u(u1), tiny_graph.neighbors_u(u2)
                ).size
                assert pair_wedge_count(tiny_graph, u1, u2) == expected

    def test_shared_butterflies_formula(self, tiny_graph):
        for u1 in range(tiny_graph.n_u):
            for u2 in range(u1 + 1, tiny_graph.n_u):
                common = pair_wedge_count(tiny_graph, u1, u2)
                assert shared_butterflies(tiny_graph, u1, u2) == common * (common - 1) // 2

    def test_shared_butterflies_symmetric(self, tiny_graph):
        assert shared_butterflies(tiny_graph, 1, 2) == shared_butterflies(tiny_graph, 2, 1)

    def test_no_common_neighbors(self):
        from repro.graph.builders import from_edge_list

        graph = from_edge_list([(0, 0), (1, 1)])
        assert pair_wedge_count(graph, 0, 1) == 0
        assert shared_butterflies(graph, 0, 1) == 0


class TestIterationAndTotals:
    def test_iterate_wedges_matches_total(self, tiny_graph):
        wedges = list(iterate_wedges(tiny_graph, "U"))
        assert len(wedges) == total_wedges(tiny_graph, "U")
        # Endpoints are ordered and distinct from each other.
        for endpoint_1, center, endpoint_2 in wedges:
            assert endpoint_1 < endpoint_2
            assert center in tiny_graph.neighbors_u(endpoint_1).tolist()
            assert center in tiny_graph.neighbors_u(endpoint_2).tolist()

    def test_total_wedges_complete(self):
        graph = complete_bipartite(5, 4)
        assert total_wedges(graph, "U") == 4 * 10  # |V| * C(5, 2)
        assert total_wedges(graph, "V") == 5 * 6

    def test_total_wedges_star(self):
        graph = star(6, center_side="V")
        assert total_wedges(graph, "U") == 15
        assert total_wedges(graph, "V") == 0
