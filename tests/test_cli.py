"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.graph.builders import from_edge_list
from repro.graph.io import write_edge_list


@pytest.fixture
def graph_file(tmp_path):
    graph = from_edge_list(
        [(0, 0), (0, 1), (1, 0), (1, 1), (2, 1), (2, 2), (3, 2), (3, 0)], n_u=4, n_v=3
    )
    path = tmp_path / "graph.tsv"
    write_edge_list(graph, path)
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_decompose_defaults(self, graph_file):
        args = build_parser().parse_args(["decompose", "--path", str(graph_file)])
        assert args.algorithm == "receipt"
        assert args.side == "U"

    def test_dataset_and_path_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stats", "--dataset", "it", "--path", "x"])


class TestCommands:
    def test_datasets_listing(self, capsys):
        assert main(["datasets"]) == 0
        output = capsys.readouterr().out
        for key in ("it", "de", "or", "lj", "en", "tr"):
            assert key in output

    def test_stats_on_file(self, graph_file, capsys):
        assert main(["stats", "--path", str(graph_file)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_u"] == 4
        assert payload["n_edges"] == 8

    def test_count_on_file(self, graph_file, capsys):
        assert main(["count", "--path", str(graph_file)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["total_butterflies"] >= 1
        assert payload["algorithm"] == "vertex-priority"

    def test_decompose_receipt(self, graph_file, capsys, tmp_path):
        output_file = tmp_path / "tips.json"
        exit_code = main([
            "decompose", "--path", str(graph_file),
            "--algorithm", "receipt", "--partitions", "2",
            "--output", str(output_file),
        ])
        assert exit_code == 0
        stdout = capsys.readouterr().out
        assert '"algorithm": "RECEIPT"' in stdout
        assert "tip numbers written" in stdout
        # Output file holds per-vertex tip numbers.
        payload = json.loads(output_file.read_text())
        assert payload["side"] == "U"
        assert len(payload["tip_numbers"]) == 4

    def test_decompose_bup_v_side(self, graph_file, capsys):
        assert main(["decompose", "--path", str(graph_file), "--algorithm", "bup",
                     "--side", "V"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["algorithm"] == "BUP"
        assert payload["side"] == "V"
        assert payload["n_vertices"] == 3

    def test_compare_receipt_vs_bup(self, graph_file, capsys):
        assert main(["compare", "--path", str(graph_file),
                     "--first", "receipt", "--second", "bup"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["agree"] is True

    def test_stats_on_generated_dataset(self, capsys):
        assert main(["stats", "--dataset", "it", "--scale", "0.05", "--seed", "3"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_edges"] > 0

    def test_unknown_dataset_returns_error_code(self, capsys):
        assert main(["stats", "--dataset", "doesnotexist"]) == 2
        assert "error" in capsys.readouterr().err
