"""Unit tests for the command-line interface."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import build_parser, main
from repro.graph.builders import from_edge_list
from repro.graph.io import write_edge_list


@pytest.fixture
def graph_file(tmp_path):
    graph = from_edge_list(
        [(0, 0), (0, 1), (1, 0), (1, 1), (2, 1), (2, 2), (3, 2), (3, 0)], n_u=4, n_v=3
    )
    path = tmp_path / "graph.tsv"
    write_edge_list(graph, path)
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_decompose_defaults(self, graph_file):
        args = build_parser().parse_args(["decompose", "--path", str(graph_file)])
        assert args.algorithm == "receipt"
        assert args.side == "U"

    def test_dataset_and_path_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stats", "--dataset", "it", "--path", "x"])


class TestCommands:
    def test_datasets_listing(self, capsys):
        assert main(["datasets"]) == 0
        output = capsys.readouterr().out
        for key in ("it", "de", "or", "lj", "en", "tr"):
            assert key in output

    def test_stats_on_file(self, graph_file, capsys):
        assert main(["stats", "--path", str(graph_file)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_u"] == 4
        assert payload["n_edges"] == 8

    def test_count_on_file(self, graph_file, capsys):
        assert main(["count", "--path", str(graph_file)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["total_butterflies"] >= 1
        assert payload["algorithm"] == "vertex-priority"

    def test_decompose_receipt(self, graph_file, capsys, tmp_path):
        output_file = tmp_path / "tips.json"
        exit_code = main([
            "decompose", "--path", str(graph_file),
            "--algorithm", "receipt", "--partitions", "2",
            "--output", str(output_file),
        ])
        assert exit_code == 0
        stdout = capsys.readouterr().out
        assert '"algorithm": "RECEIPT"' in stdout
        assert "tip numbers written" in stdout
        # Output file holds per-vertex tip numbers.
        payload = json.loads(output_file.read_text())
        assert payload["side"] == "U"
        assert len(payload["tip_numbers"]) == 4

    def test_decompose_bup_v_side(self, graph_file, capsys):
        assert main(["decompose", "--path", str(graph_file), "--algorithm", "bup",
                     "--side", "V"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["algorithm"] == "BUP"
        assert payload["side"] == "V"
        assert payload["n_vertices"] == 3

    def test_compare_receipt_vs_bup(self, graph_file, capsys):
        assert main(["compare", "--path", str(graph_file),
                     "--first", "receipt", "--second", "bup"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["agree"] is True

    def test_stats_on_generated_dataset(self, capsys):
        assert main(["stats", "--dataset", "it", "--scale", "0.05", "--seed", "3"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_edges"] > 0

    def test_unknown_dataset_returns_error_code(self, capsys):
        assert main(["stats", "--dataset", "doesnotexist"]) == 2
        assert "error" in capsys.readouterr().err


class TestServingCommands:
    @pytest.fixture
    def artifact(self, graph_file, tmp_path, capsys):
        path = tmp_path / "graph.tipidx"
        assert main(["build-index", "--path", str(graph_file), "--partitions", "2",
                     "--output", str(path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["graph"]["n_u"] == 4
        assert payload["decomposition"]["algorithm"] == "RECEIPT"
        return path

    def test_build_index_refuses_overwrite_without_force(self, graph_file, artifact, capsys):
        assert main(["build-index", "--path", str(graph_file), "--partitions", "2",
                     "--output", str(artifact)]) == 2
        assert "already exists" in capsys.readouterr().err
        assert main(["build-index", "--path", str(graph_file), "--partitions", "2",
                     "--output", str(artifact), "--force"]) == 0

    def test_query_matches_decompose(self, graph_file, artifact, capsys):
        assert main(["decompose", "--path", str(graph_file), "--algorithm", "bup"]) == 0
        decompose_summary = json.loads(capsys.readouterr().out)

        assert main(["query", str(artifact), "--op", "stats"]) == 0
        stats = json.loads(capsys.readouterr().out)
        summary = stats["artifacts"]["graph.U"]
        assert summary["max_tip_number"] == decompose_summary["max_tip_number"]
        assert summary["n_vertices"] == decompose_summary["n_vertices"]

    def test_query_theta_and_batch(self, artifact, capsys):
        assert main(["query", str(artifact), "--op", "theta", "--vertex", "0"]) == 0
        point = json.loads(capsys.readouterr().out)
        assert main(["query", str(artifact), "--op", "batch", "--vertices", "0,1,2,3"]) == 0
        batch = json.loads(capsys.readouterr().out)
        assert batch["thetas"][0] == point["theta"]
        assert len(batch["thetas"]) == 4

    def test_query_top_k_k_tip_histogram_community(self, artifact, capsys):
        assert main(["query", str(artifact), "--op", "top-k", "--k", "2"]) == 0
        top = json.loads(capsys.readouterr().out)
        assert len(top["vertices"]) == 2

        assert main(["query", str(artifact), "--op", "k-tip", "--k", "1"]) == 0
        ktip = json.loads(capsys.readouterr().out)
        assert ktip["size"] == len(ktip["vertices"])

        assert main(["query", str(artifact), "--op", "histogram"]) == 0
        histogram = json.loads(capsys.readouterr().out)
        assert "histogram" in histogram["artifacts"]["graph.U"]

        assert main(["query", str(artifact), "--op", "community", "--k", "1"]) == 0
        community = json.loads(capsys.readouterr().out)
        assert community["n_communities"] >= 1

    def test_query_missing_arguments_error(self, artifact, capsys):
        assert main(["query", str(artifact), "--op", "theta"]) == 2
        assert "--vertex" in capsys.readouterr().err

    def test_query_missing_artifact_error(self, tmp_path, capsys):
        assert main(["query", str(tmp_path / "ghost.tipidx")]) == 2
        assert "no artifact" in capsys.readouterr().err


class TestEntryPoints:
    """`python -m repro` must behave identically to the console script."""

    @staticmethod
    def _module_env():
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        return env

    def test_python_dash_m_matches_direct_main(self, capsys):
        assert main(["datasets"]) == 0
        direct = capsys.readouterr().out

        completed = subprocess.run(
            [sys.executable, "-m", "repro", "datasets"],
            capture_output=True, text=True, timeout=120, env=self._module_env(),
        )
        assert completed.returncode == 0
        assert completed.stdout == direct

    def test_python_dash_m_error_path(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "stats", "--dataset", "doesnotexist"],
            capture_output=True, text=True, timeout=120, env=self._module_env(),
        )
        assert completed.returncode == 2
        assert "error" in completed.stderr
