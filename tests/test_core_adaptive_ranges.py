"""Tests for the adaptive-vs-static range determination toggle."""

import numpy as np
import pytest

from repro.butterfly.counting import count_per_vertex_priority
from repro.core.cd import coarse_grained_decomposition
from repro.core.receipt import ReceiptConfig, receipt_decomposition
from repro.peeling.bup import bup_decomposition


class TestStaticTargets:
    def test_static_targets_still_correct(self, community_graph, blocks_graph):
        for graph in (community_graph, blocks_graph):
            reference = bup_decomposition(graph, "U").tip_numbers
            result = receipt_decomposition(
                graph, "U", n_partitions=5, adaptive_range_targets=False
            )
            assert np.array_equal(result.tip_numbers, reference)

    def test_static_targets_respect_ranges(self, community_graph):
        counts = count_per_vertex_priority(community_graph).u_counts
        cd = coarse_grained_decomposition(community_graph, counts, 5, adaptive_targets=False)
        reference = bup_decomposition(community_graph, "U").tip_numbers
        for index, subset in enumerate(cd.subsets):
            lower, upper = cd.range_of_subset(index)
            assert np.all(reference[subset] >= lower)
            assert np.all(reference[subset] < upper)

    def test_adaptive_creates_at_least_as_many_populated_subsets(self, medium_random_graph):
        counts = count_per_vertex_priority(medium_random_graph).u_counts
        adaptive = coarse_grained_decomposition(medium_random_graph, counts, 8,
                                                adaptive_targets=True)
        static = coarse_grained_decomposition(medium_random_graph, counts, 8,
                                              adaptive_targets=False)
        adaptive_populated = sum(1 for subset in adaptive.subsets if subset.size)
        static_populated = sum(1 for subset in static.subsets if subset.size)
        assert adaptive_populated >= static_populated

    def test_config_carries_toggle(self):
        config = ReceiptConfig(adaptive_range_targets=False)
        assert config.adaptive_range_targets is False
        assert ReceiptConfig().adaptive_range_targets is True

    def test_both_modes_partition_every_vertex(self, blocks_graph):
        counts = count_per_vertex_priority(blocks_graph).u_counts
        for adaptive in (True, False):
            cd = coarse_grained_decomposition(blocks_graph, counts, 4,
                                              adaptive_targets=adaptive)
            assigned = np.concatenate(cd.subsets)
            assert sorted(assigned.tolist()) == list(range(blocks_graph.n_u))
