"""Unit tests for RECEIPT Coarse-grained Decomposition (CD)."""

import numpy as np
import pytest

from repro.butterfly.counting import count_per_vertex_priority
from repro.core.cd import coarse_grained_decomposition
from repro.graph.builders import complete_bipartite, star
from repro.peeling.bup import bup_decomposition


def _run_cd(graph, n_partitions=4, **kwargs):
    counts = count_per_vertex_priority(graph).u_counts
    return coarse_grained_decomposition(graph, counts, n_partitions, **kwargs), counts


class TestPartitionStructure:
    def test_every_vertex_assigned_exactly_once(self, blocks_graph):
        cd, _ = _run_cd(blocks_graph)
        assigned = np.concatenate(cd.subsets) if cd.subsets else np.zeros(0, dtype=np.int64)
        assert sorted(assigned.tolist()) == list(range(blocks_graph.n_u))

    def test_bounds_strictly_increasing(self, blocks_graph, community_graph):
        for graph in (blocks_graph, community_graph):
            cd, _ = _run_cd(graph)
            assert np.all(np.diff(cd.bounds) > 0)
            assert cd.bounds[0] == 0
            assert len(cd.bounds) == cd.n_subsets + 1

    def test_tip_numbers_fall_inside_assigned_range(self, blocks_graph, community_graph):
        # Theorem 1: a vertex of subset i has theta in [bounds[i], bounds[i+1]).
        for graph in (blocks_graph, community_graph):
            cd, _ = _run_cd(graph, n_partitions=5)
            reference = bup_decomposition(graph, "U").tip_numbers
            for index, subset in enumerate(cd.subsets):
                lower, upper = cd.range_of_subset(index)
                assert np.all(reference[subset] >= lower), f"subset {index} lower bound"
                assert np.all(reference[subset] < upper), f"subset {index} upper bound"

    def test_init_supports_match_residual_butterflies(self, blocks_graph):
        # For a vertex of subset i, init_supports equals its butterflies with
        # vertices of subsets >= i (Sec. 3: the FD support initialisation).
        from repro.butterfly.counting import count_per_vertex_priority as counter

        cd, _ = _run_cd(blocks_graph, n_partitions=4)
        membership = cd.subset_of_vertex()
        for index, subset in enumerate(cd.subsets):
            if subset.size == 0:
                continue
            survivors = np.flatnonzero(membership >= index)
            induced = blocks_graph.induced_on_u_subset(survivors)
            induced_counts = counter(induced.graph).u_counts
            position_of = {int(v): i for i, v in enumerate(survivors)}
            for vertex in subset:
                assert cd.init_supports[vertex] == induced_counts[position_of[int(vertex)]]

    def test_subset_of_vertex_mapping(self, blocks_graph):
        cd, _ = _run_cd(blocks_graph)
        membership = cd.subset_of_vertex()
        for index, subset in enumerate(cd.subsets):
            assert np.all(membership[subset] == index)
        assert np.all(membership >= 0)

    def test_single_partition_takes_everything(self, blocks_graph):
        cd, _ = _run_cd(blocks_graph, n_partitions=1)
        # One planned range plus at most one leftover subset.
        assert cd.n_subsets <= 2
        assigned = np.concatenate(cd.subsets)
        assert assigned.size == blocks_graph.n_u

    def test_more_partitions_than_distinct_supports(self, complete_4x3):
        counts = count_per_vertex_priority(complete_4x3).u_counts
        cd = coarse_grained_decomposition(complete_4x3, counts, 10)
        assigned = np.concatenate([s for s in cd.subsets if s.size])
        assert sorted(assigned.tolist()) == [0, 1, 2, 3]

    def test_star_graph_single_zero_range(self):
        graph = star(5, center_side="V")
        counts = count_per_vertex_priority(graph).u_counts
        cd = coarse_grained_decomposition(graph, counts, 3)
        assert np.concatenate(cd.subsets).size == 5
        assert all(np.all(cd.init_supports[s] == 0) for s in cd.subsets)

    def test_invalid_partition_count(self, blocks_graph):
        counts = count_per_vertex_priority(blocks_graph).u_counts
        with pytest.raises(ValueError):
            coarse_grained_decomposition(blocks_graph, counts, 0)

    def test_wrong_support_length(self, blocks_graph):
        with pytest.raises(ValueError):
            coarse_grained_decomposition(blocks_graph, np.zeros(2), 4)


class TestInstrumentation:
    def test_counters_populated(self, blocks_graph):
        cd, _ = _run_cd(blocks_graph)
        assert cd.counters.synchronization_rounds > 0
        assert cd.counters.wedges_traversed > 0
        assert cd.counters.vertices_peeled == blocks_graph.n_u
        assert cd.counters.elapsed_seconds > 0

    def test_iteration_records_consistent(self, blocks_graph):
        cd, _ = _run_cd(blocks_graph)
        assert len(cd.iteration_records) == cd.counters.synchronization_rounds
        # Iteration records cover exactly the subsets peeled by the main loop
        # (a leftover subset, if any, is appended without peeling iterations).
        planned_subsets = len(cd.targeter_history)
        peeled_in_loop = sum(int(subset.size) for subset in cd.subsets[:planned_subsets])
        assert sum(r["vertices_peeled"] for r in cd.iteration_records) == peeled_in_loop
        for record in cd.iteration_records:
            assert record["upper_bound"] > record["lower_bound"]

    def test_fewer_rounds_than_parb_levels(self, community_graph):
        # The raison d'etre of CD: far fewer synchronization rounds than
        # one-round-per-support-level peeling.
        from repro.peeling.parbutterfly import parbutterfly_decomposition

        cd, _ = _run_cd(community_graph, n_partitions=4)
        parb = parbutterfly_decomposition(community_graph, "U")
        assert cd.counters.synchronization_rounds < parb.counters.synchronization_rounds

    def test_huc_disabled_never_recounts(self, blocks_graph):
        cd, _ = _run_cd(blocks_graph, enable_huc=False)
        assert cd.counters.recount_invocations == 0
        assert all(not record["recounted"] for record in cd.iteration_records)

    def test_targeter_history_length(self, blocks_graph):
        cd, _ = _run_cd(blocks_graph, n_partitions=6)
        assert len(cd.targeter_history) <= 6


class TestOptimizationToggles:
    @pytest.mark.parametrize("enable_huc", [True, False])
    @pytest.mark.parametrize("enable_dgm", [True, False])
    def test_partitions_respect_ranges_under_all_toggles(
        self, community_graph, enable_huc, enable_dgm
    ):
        cd, _ = _run_cd(
            community_graph, n_partitions=4, enable_huc=enable_huc, enable_dgm=enable_dgm
        )
        reference = bup_decomposition(community_graph, "U").tip_numbers
        for index, subset in enumerate(cd.subsets):
            lower, upper = cd.range_of_subset(index)
            assert np.all(reference[subset] >= lower)
            assert np.all(reference[subset] < upper)

    def test_dgm_reduces_wedge_traversal(self, community_graph):
        with_dgm, _ = _run_cd(community_graph, enable_huc=False, enable_dgm=True)
        without_dgm, _ = _run_cd(community_graph, enable_huc=False, enable_dgm=False)
        assert with_dgm.counters.wedges_traversed <= without_dgm.counters.wedges_traversed
        assert with_dgm.counters.dgm_compactions >= 0
