"""Unit tests for RECEIPT Fine-grained Decomposition (FD)."""

import numpy as np
import pytest

from repro.butterfly.counting import count_per_vertex_priority
from repro.core.cd import coarse_grained_decomposition
from repro.core.fd import fine_grained_decomposition
from repro.parallel.threadpool import ExecutionContext
from repro.peeling.bup import bup_decomposition


@pytest.fixture
def cd_and_reference(blocks_graph):
    counts = count_per_vertex_priority(blocks_graph).u_counts
    cd = coarse_grained_decomposition(blocks_graph, counts, 4)
    reference = bup_decomposition(blocks_graph, "U")
    return blocks_graph, cd, reference


class TestExactness:
    def test_matches_bup(self, cd_and_reference):
        graph, cd, reference = cd_and_reference
        fd = fine_grained_decomposition(graph, cd)
        assert np.array_equal(fd.tip_numbers, reference.tip_numbers)

    def test_matches_bup_without_workload_aware_order(self, cd_and_reference):
        graph, cd, reference = cd_and_reference
        fd = fine_grained_decomposition(graph, cd, workload_aware=False)
        assert np.array_equal(fd.tip_numbers, reference.tip_numbers)

    def test_matches_bup_with_real_threads(self, cd_and_reference):
        graph, cd, reference = cd_and_reference
        with ExecutionContext(4, use_real_threads=True) as context:
            fd = fine_grained_decomposition(graph, cd, context=context)
        assert np.array_equal(fd.tip_numbers, reference.tip_numbers)

    def test_matches_bup_with_dgm_in_subsets(self, cd_and_reference):
        graph, cd, reference = cd_and_reference
        fd = fine_grained_decomposition(graph, cd, enable_dgm=True)
        assert np.array_equal(fd.tip_numbers, reference.tip_numbers)

    def test_many_partitions(self, community_graph):
        counts = count_per_vertex_priority(community_graph).u_counts
        reference = bup_decomposition(community_graph, "U")
        for n_partitions in (1, 2, 7, 20):
            cd = coarse_grained_decomposition(community_graph, counts, n_partitions)
            fd = fine_grained_decomposition(community_graph, cd)
            assert np.array_equal(fd.tip_numbers, reference.tip_numbers), n_partitions


class TestWorkAccounting:
    def test_subset_records_cover_all_subsets(self, cd_and_reference):
        graph, cd, _ = cd_and_reference
        fd = fine_grained_decomposition(graph, cd)
        assert len(fd.subset_records) == cd.n_subsets
        assert sorted(r.subset_index for r in fd.subset_records) == list(range(cd.n_subsets))
        assert sum(r.n_vertices for r in fd.subset_records) == graph.n_u

    def test_fd_traverses_fewer_wedges_than_cd(self, community_graph):
        # The induced subgraphs collectively contain far fewer wedges than
        # the original graph (the Fig. 2 observation).
        counts = count_per_vertex_priority(community_graph).u_counts
        cd = coarse_grained_decomposition(community_graph, counts, 5)
        fd = fine_grained_decomposition(community_graph, cd)
        assert fd.counters.wedges_traversed <= cd.counters.wedges_traversed

    def test_induced_edges_bounded_by_graph(self, cd_and_reference):
        graph, cd, _ = cd_and_reference
        fd = fine_grained_decomposition(graph, cd)
        assert sum(r.induced_edges for r in fd.subset_records) <= graph.n_edges

    def test_no_synchronization_rounds(self, cd_and_reference):
        graph, cd, _ = cd_and_reference
        fd = fine_grained_decomposition(graph, cd)
        assert fd.counters.synchronization_rounds == 0

    def test_subset_work_vector(self, cd_and_reference):
        graph, cd, _ = cd_and_reference
        fd = fine_grained_decomposition(graph, cd)
        work = fd.subset_work()
        assert work.shape[0] == cd.n_subsets
        assert work.sum() == fd.counters.wedges_traversed


class TestScheduling:
    def test_workload_aware_order_is_descending_in_estimated_work(self, cd_and_reference):
        graph, cd, _ = cd_and_reference
        fd = fine_grained_decomposition(graph, cd, workload_aware=True)
        wedge_work = graph.wedge_work_per_vertex("U")
        estimates = [float(wedge_work[s].sum()) if s.size else 0.0 for s in cd.subsets]
        scheduled = [estimates[i] for i in fd.schedule_order]
        assert scheduled == sorted(scheduled, reverse=True)

    def test_natural_order_without_was(self, cd_and_reference):
        graph, cd, _ = cd_and_reference
        fd = fine_grained_decomposition(graph, cd, workload_aware=False)
        assert fd.schedule_order == list(range(cd.n_subsets))
