"""Unit tests for Hybrid Update Computation (HUC) helpers."""

import numpy as np

from repro.butterfly.counting import count_per_vertex_priority
from repro.core.hybrid import peel_cost, recount_cost, recount_supports, should_recount
from repro.graph.builders import complete_bipartite


class TestCosts:
    def test_peel_cost_sums_wedge_work(self, blocks_graph):
        work = blocks_graph.wedge_work_per_vertex("U")
        active = np.array([0, 3, 5])
        assert peel_cost(work, active) == int(work[[0, 3, 5]].sum())

    def test_peel_cost_empty(self, blocks_graph):
        work = blocks_graph.wedge_work_per_vertex("U")
        assert peel_cost(work, np.array([], dtype=np.int64)) == 0

    def test_recount_cost_full_graph_equals_counting_bound(self, blocks_graph):
        alive = np.ones(blocks_graph.n_u, dtype=bool)
        assert recount_cost(blocks_graph, alive) == blocks_graph.counting_wedge_bound()

    def test_recount_cost_empty(self, blocks_graph):
        alive = np.zeros(blocks_graph.n_u, dtype=bool)
        assert recount_cost(blocks_graph, alive) == 0

    def test_recount_cost_decreases_as_vertices_die(self, blocks_graph):
        full = recount_cost(blocks_graph, np.ones(blocks_graph.n_u, dtype=bool))
        half_mask = np.ones(blocks_graph.n_u, dtype=bool)
        half_mask[: blocks_graph.n_u // 2] = False
        assert recount_cost(blocks_graph, half_mask) <= full

    def test_should_recount_decision(self):
        assert should_recount(100, 50)
        assert not should_recount(50, 100)
        assert not should_recount(50, 50)


class TestRecountSupports:
    def test_full_mask_matches_fresh_count(self, blocks_graph):
        alive = np.ones(blocks_graph.n_u, dtype=bool)
        outcome = recount_supports(blocks_graph, alive)
        fresh = count_per_vertex_priority(blocks_graph)
        assert np.array_equal(outcome.supports, fresh.u_counts)
        assert outcome.wedges_traversed == fresh.wedges_traversed

    def test_partial_mask_matches_induced_subgraph(self, blocks_graph):
        alive = np.zeros(blocks_graph.n_u, dtype=bool)
        alive[::2] = True
        outcome = recount_supports(blocks_graph, alive)
        induced = blocks_graph.induced_on_u_subset(np.flatnonzero(alive))
        induced_counts = count_per_vertex_priority(induced.graph)
        assert np.array_equal(outcome.supports[np.flatnonzero(alive)], induced_counts.u_counts)
        # Dead vertices report zero butterflies.
        assert outcome.supports[~alive].sum() == 0

    def test_empty_mask(self, blocks_graph):
        outcome = recount_supports(blocks_graph, np.zeros(blocks_graph.n_u, dtype=bool))
        assert outcome.supports.sum() == 0
        assert outcome.wedges_traversed == 0

    def test_recount_equals_peeling_effect(self, complete_4x3):
        # Recounting after deleting a vertex set must equal the initial count
        # minus the butterflies shared with the deleted set (what peeling
        # would have computed) — the core HUC equivalence.
        from repro.butterfly.wedges import shared_butterflies

        initial = count_per_vertex_priority(complete_4x3).u_counts
        alive = np.array([False, True, True, True])
        outcome = recount_supports(complete_4x3, alive)
        for vertex in (1, 2, 3):
            expected = initial[vertex] - shared_butterflies(complete_4x3, 0, vertex)
            assert outcome.supports[vertex] == expected
