"""Unit tests for range determination (findHi) and adaptive targeting."""

import numpy as np
import pytest

from repro.core.ranges import AdaptiveRangeTargeter, find_range_upper_bound


class TestFindRangeUpperBound:
    def test_simple_split(self):
        supports = np.array([0, 1, 2, 3, 4])
        work = np.array([10, 10, 10, 10, 10])
        # Target of 30 is reached by the three lowest-support vertices.
        assert find_range_upper_bound(supports, work, 30) == 3

    def test_bound_is_exclusive(self):
        supports = np.array([5, 5, 7])
        work = np.array([1, 1, 1])
        bound = find_range_upper_bound(supports, work, 2)
        assert bound == 6  # includes the two support-5 vertices, excludes 7

    def test_target_larger_than_total(self):
        supports = np.array([2, 9, 4])
        work = np.array([1, 1, 1])
        assert find_range_upper_bound(supports, work, 100) == 10  # max + 1

    def test_zero_target_still_covers_minimum(self):
        supports = np.array([3, 8])
        work = np.array([5, 5])
        assert find_range_upper_bound(supports, work, 0) == 4

    def test_unsorted_input(self):
        supports = np.array([9, 1, 5, 3])
        work = np.array([1, 1, 1, 1])
        assert find_range_upper_bound(supports, work, 2) == 4

    def test_ties_included_completely(self):
        supports = np.array([2, 2, 2, 7])
        work = np.array([4, 4, 4, 4])
        # Target 5 lands inside the tie group; the bound must still cover all
        # support-2 vertices because the bound is a support value, not a count.
        bound = find_range_upper_bound(supports, work, 5)
        assert bound == 3

    def test_empty_input(self):
        assert find_range_upper_bound(np.array([]), np.array([]), 10) == 1

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            find_range_upper_bound(np.array([1, 2]), np.array([1]), 5)

    def test_skewed_work_changes_split(self):
        supports = np.array([0, 1, 2, 3])
        uniform = find_range_upper_bound(supports, np.array([1, 1, 1, 1]), 2)
        skewed = find_range_upper_bound(supports, np.array([100, 1, 1, 1]), 2)
        assert uniform == 2
        assert skewed == 1  # the heavy vertex alone satisfies the target


class TestAdaptiveRangeTargeter:
    def test_even_split_without_overshoot(self):
        targeter = AdaptiveRangeTargeter(n_partitions=4)
        assert targeter.next_target(100) == pytest.approx(25.0)
        targeter.record_subset(25.0, 25.0)
        assert targeter.scaling_factor == pytest.approx(1.0)
        assert targeter.next_target(75) == pytest.approx(25.0)

    def test_overshoot_scales_down_next_target(self):
        targeter = AdaptiveRangeTargeter(n_partitions=4)
        target = targeter.next_target(100)
        targeter.record_subset(target, covered_work=50.0)  # 2x overshoot
        assert targeter.scaling_factor == pytest.approx(0.5)
        # Remaining work 50 over 3 partitions, scaled by 0.5.
        assert targeter.next_target(50) == pytest.approx(50 / 3 * 0.5)

    def test_scaling_factor_never_exceeds_one(self):
        targeter = AdaptiveRangeTargeter(n_partitions=3)
        targeter.record_subset(target_work=30.0, covered_work=10.0)
        assert targeter.scaling_factor == 1.0

    def test_exhaustion(self):
        targeter = AdaptiveRangeTargeter(n_partitions=2)
        assert not targeter.exhausted
        targeter.record_subset(1.0, 1.0)
        targeter.record_subset(1.0, 1.0)
        assert targeter.exhausted

    def test_zero_covered_work_resets_scaling(self):
        targeter = AdaptiveRangeTargeter(n_partitions=3)
        targeter.record_subset(10.0, 0.0)
        assert targeter.scaling_factor == 1.0

    def test_history_recorded(self):
        targeter = AdaptiveRangeTargeter(n_partitions=3)
        targeter.record_subset(10.0, 20.0)
        targeter.record_subset(5.0, 5.0)
        assert len(targeter.history) == 2
        assert targeter.history[0]["covered_work"] == 20.0
        assert targeter.history[1]["subset"] == 2

    def test_last_partition_gets_all_remaining(self):
        targeter = AdaptiveRangeTargeter(n_partitions=3)
        targeter.record_subset(1.0, 1.0)
        targeter.record_subset(1.0, 1.0)
        assert targeter.next_target(42.0) == pytest.approx(42.0)
