"""Unit tests for the top-level RECEIPT decomposition."""

import numpy as np
import pytest

from repro.butterfly.counting import count_per_vertex
from repro.core.receipt import DEFAULT_PARTITIONS, ReceiptConfig, receipt_decomposition, tip_decomposition
from repro.errors import ReproError
from repro.graph.builders import complete_bipartite, empty_graph, star
from repro.peeling.base import validate_result_against_definition
from repro.peeling.bup import bup_decomposition


class TestCorrectness:
    def test_matches_bup_on_fixtures(self, tiny_graph, blocks_graph, community_graph,
                                     hierarchy_graph):
        for graph in (tiny_graph, blocks_graph, community_graph, hierarchy_graph):
            for side in ("U", "V"):
                reference = bup_decomposition(graph, side)
                receipt = receipt_decomposition(graph, side, n_partitions=4)
                assert np.array_equal(reference.tip_numbers, receipt.tip_numbers), (graph.name, side)

    def test_variants_match(self, community_graph):
        reference = bup_decomposition(community_graph, "U").tip_numbers
        for variant in ("receipt", "receipt-", "receipt--"):
            config = ReceiptConfig.from_variant(variant, n_partitions=5)
            result = receipt_decomposition(community_graph, "U", config=config)
            assert np.array_equal(result.tip_numbers, reference), variant

    def test_partition_counts_do_not_change_result(self, blocks_graph):
        reference = bup_decomposition(blocks_graph, "U").tip_numbers
        for n_partitions in (1, 2, 3, 8, 16, DEFAULT_PARTITIONS):
            result = receipt_decomposition(blocks_graph, "U", n_partitions=n_partitions)
            assert np.array_equal(result.tip_numbers, reference), n_partitions

    def test_degenerate_graphs(self):
        assert receipt_decomposition(star(5), "U", n_partitions=3).max_tip_number == 0
        assert receipt_decomposition(empty_graph(3, 2), "U", n_partitions=2).tip_numbers.tolist() == [0, 0, 0]
        complete = receipt_decomposition(complete_bipartite(4, 3), "U", n_partitions=2)
        assert set(complete.tip_numbers.tolist()) == {9}

    def test_precomputed_counts(self, blocks_graph):
        counts = count_per_vertex(blocks_graph)
        result = receipt_decomposition(blocks_graph, "U", counts=counts, n_partitions=4)
        reference = bup_decomposition(blocks_graph, "U", counts=counts)
        assert np.array_equal(result.tip_numbers, reference.tip_numbers)

    def test_v_side_uses_v_counts(self, blocks_graph):
        counts = count_per_vertex(blocks_graph)
        result = receipt_decomposition(blocks_graph, "V", counts=counts, n_partitions=4)
        assert result.side == "V"
        assert result.n_vertices == blocks_graph.n_v
        assert np.array_equal(result.initial_butterflies, counts.v_counts)
        validate_result_against_definition(blocks_graph, result)

    def test_real_threads(self, blocks_graph):
        reference = bup_decomposition(blocks_graph, "U").tip_numbers
        result = receipt_decomposition(
            blocks_graph, "U", n_partitions=4, n_threads=4, use_real_threads=True
        )
        assert np.array_equal(result.tip_numbers, reference)


class TestConfig:
    def test_variant_factory(self):
        assert ReceiptConfig.from_variant("receipt").enable_dgm
        assert not ReceiptConfig.from_variant("receipt-").enable_dgm
        minus_minus = ReceiptConfig.from_variant("receipt--")
        assert not minus_minus.enable_dgm and not minus_minus.enable_huc

    def test_variant_overrides(self):
        config = ReceiptConfig.from_variant("receipt", n_partitions=7)
        assert config.n_partitions == 7

    def test_unknown_variant_rejected(self):
        with pytest.raises(ReproError):
            ReceiptConfig.from_variant("receipt+++")

    def test_config_and_overrides_are_mutually_exclusive(self, blocks_graph):
        with pytest.raises(ReproError):
            receipt_decomposition(blocks_graph, "U", config=ReceiptConfig(), n_partitions=3)

    def test_default_partitions_match_paper(self):
        assert DEFAULT_PARTITIONS == 150
        assert ReceiptConfig().n_partitions == 150


class TestInstrumentation:
    def test_phase_counters_present(self, blocks_graph):
        result = receipt_decomposition(blocks_graph, "U", n_partitions=4)
        assert set(result.phase_counters) == {"pvBcnt", "cd", "fd"}
        total = sum(c.wedges_traversed for c in result.phase_counters.values())
        assert total == result.counters.wedges_traversed

    def test_extra_metadata(self, blocks_graph):
        result = receipt_decomposition(blocks_graph, "U", n_partitions=4)
        extra = result.extra
        assert len(extra["subset_sizes"]) == len(extra["subsets"])
        assert sum(extra["subset_sizes"]) == blocks_graph.n_u
        assert len(extra["bounds"]) == len(extra["subsets"]) + 1
        assert extra["total_butterflies"] == int(result.initial_butterflies.sum()) // 2
        assert len(extra["parallel_regions"]) > 0
        assert len(extra["subset_records"]) == len(extra["subsets"])

    def test_fewer_synchronization_rounds_than_parb(self, community_graph):
        from repro.peeling.parbutterfly import parbutterfly_decomposition

        receipt = receipt_decomposition(community_graph, "U", n_partitions=4)
        parb = parbutterfly_decomposition(community_graph, "U")
        assert receipt.counters.synchronization_rounds < parb.counters.synchronization_rounds

    def test_algorithm_name(self, blocks_graph):
        assert receipt_decomposition(blocks_graph, "U", n_partitions=2).algorithm == "RECEIPT"


class TestDispatcher:
    def test_dispatch_to_all_algorithms(self, blocks_graph):
        reference = tip_decomposition(blocks_graph, "U", algorithm="bup")
        for algorithm in ("receipt", "receipt-", "receipt--", "parb"):
            result = tip_decomposition(blocks_graph, "U", algorithm=algorithm, n_partitions=4) \
                if algorithm.startswith("receipt") else \
                tip_decomposition(blocks_graph, "U", algorithm=algorithm)
            assert np.array_equal(result.tip_numbers, reference.tip_numbers), algorithm

    def test_unknown_algorithm(self, blocks_graph):
        with pytest.raises(ReproError):
            tip_decomposition(blocks_graph, "U", algorithm="quantum")
