"""Unit tests for FD task scheduling (dynamic allocation and WaS/LPT)."""

import numpy as np
import pytest

from repro.core.scheduling import greedy_schedule, lpt_schedule, workload_aware_order


class TestGreedySchedule:
    def test_single_thread_executes_everything(self):
        schedule = greedy_schedule(np.array([3, 1, 2]), n_threads=1)
        assert schedule.n_threads == 1
        assert schedule.makespan == 6
        assert schedule.assignments[0] == [0, 1, 2]

    def test_two_threads_balance(self):
        schedule = greedy_schedule(np.array([4, 4]), n_threads=2)
        assert schedule.makespan == 4
        assert schedule.imbalance == pytest.approx(1.0)

    def test_more_threads_than_tasks(self):
        schedule = greedy_schedule(np.array([5, 5]), n_threads=8)
        assert schedule.makespan == 5
        assert schedule.total_work == 10

    def test_empty_task_list(self):
        schedule = greedy_schedule(np.array([]), n_threads=4)
        assert schedule.makespan == 0
        assert schedule.total_work == 0

    def test_order_matters_for_greedy(self):
        # The Fig. 3 scenario: original order leaves the long task last.
        work = np.array([13, 4, 10, 20, 1, 2], dtype=float)
        original = greedy_schedule(work, n_threads=2)
        aware = lpt_schedule(work, n_threads=2)
        assert aware.makespan < original.makespan
        assert original.makespan == 33
        assert aware.makespan == 25

    def test_loads_sum_to_total_work(self):
        work = np.array([7, 3, 9, 2, 5], dtype=float)
        schedule = greedy_schedule(work, n_threads=3)
        assert schedule.loads.sum() == pytest.approx(work.sum())
        assert set(task for tasks in schedule.assignments for task in tasks) == set(range(5))


class TestWorkloadAwareOrder:
    def test_descending_by_work(self):
        order = workload_aware_order(np.array([5, 20, 1, 20]))
        assert order.tolist() == [1, 3, 0, 2]  # ties broken by task id

    def test_empty(self):
        assert workload_aware_order(np.array([])).size == 0


class TestLptSchedule:
    def test_lpt_is_never_worse_than_arrival_order(self):
        rng = np.random.default_rng(2)
        for _ in range(20):
            work = rng.integers(1, 100, size=12).astype(float)
            threads = int(rng.integers(2, 6))
            assert lpt_schedule(work, threads).makespan <= greedy_schedule(work, threads).makespan

    def test_lpt_within_graham_bound(self):
        # LPT is a 4/3 - 1/(3m) approximation of the optimal makespan, which
        # itself is at least max(total/m, max task).
        rng = np.random.default_rng(3)
        for _ in range(20):
            work = rng.integers(1, 50, size=10).astype(float)
            threads = int(rng.integers(2, 5))
            schedule = lpt_schedule(work, threads)
            lower_bound = max(work.sum() / threads, work.max())
            assert schedule.makespan <= (4 / 3) * lower_bound + 1e-9

    def test_perfectly_divisible_work(self):
        schedule = lpt_schedule(np.array([2, 2, 2, 2], dtype=float), n_threads=2)
        assert schedule.makespan == 4
        assert schedule.imbalance == pytest.approx(1.0)
