"""Unit tests for post-run RECEIPT statistics (breakdowns, r ratio, cost model)."""

import numpy as np
import pytest

from repro.core.receipt import receipt_decomposition
from repro.core.stats import (
    build_cost_model,
    peel_to_count_ratio,
    projected_speedups,
    time_breakdown,
    wedge_breakdown,
)
from repro.peeling.bup import bup_decomposition


@pytest.fixture(scope="module")
def receipt_result():
    from repro.datasets.generators import affiliation_graph

    graph = affiliation_graph(120, 60, 18, community_size_u=14, community_size_v=6,
                              membership_probability=0.7, background_edges=100, seed=21)
    return receipt_decomposition(graph, "U", n_partitions=6)


class TestBreakdowns:
    def test_wedge_breakdown_fractions_sum_to_one(self, receipt_result):
        breakdown = wedge_breakdown(receipt_result)
        assert set(breakdown.absolute) == {"pvBcnt", "cd", "fd"}
        assert sum(breakdown.fraction.values()) == pytest.approx(1.0)
        assert breakdown.total == receipt_result.counters.wedges_traversed

    def test_cd_dominates_wedges(self, receipt_result):
        # The paper's Fig. 8: CD traverses the bulk of the wedges, FD < 15%.
        breakdown = wedge_breakdown(receipt_result)
        assert breakdown.fraction["cd"] > breakdown.fraction["fd"]

    def test_time_breakdown_fractions_sum_to_one(self, receipt_result):
        breakdown = time_breakdown(receipt_result)
        assert sum(breakdown.fraction.values()) == pytest.approx(1.0)
        assert all(value >= 0 for value in breakdown.absolute.values())

    def test_breakdown_without_phases_falls_back(self, blocks_graph):
        result = bup_decomposition(blocks_graph, "U")
        breakdown = wedge_breakdown(result)
        assert breakdown.fraction == {"total": 1.0}


class TestPeelToCountRatio:
    def test_ratio_positive(self, receipt_result):
        assert peel_to_count_ratio(receipt_result) > 0

    def test_ratio_uses_phase_counters(self, receipt_result):
        ratio = peel_to_count_ratio(receipt_result)
        counting = receipt_result.counters.counting_wedges
        peeling = receipt_result.counters.peeling_wedges
        assert ratio == pytest.approx(peeling / counting)


class TestCostModel:
    def test_build_cost_model(self, receipt_result):
        model = build_cost_model(receipt_result)
        assert model.total_work > 0
        assert len(model.regions) > 0

    def test_requires_parallel_regions(self, blocks_graph):
        result = bup_decomposition(blocks_graph, "U")
        with pytest.raises(ValueError):
            build_cost_model(result)

    def test_speedup_baseline_and_gains(self, receipt_result):
        # Without barrier overhead, more threads can never cost more work
        # than the single-threaded execution, so projected speedups are >= 1.
        speedups = projected_speedups(
            receipt_result, thread_counts=(1, 2, 9, 18), barrier_cost=0.0
        )
        assert speedups[1] == pytest.approx(1.0)
        assert speedups[2] >= 1.0
        assert speedups[18] >= 1.0

    def test_speedup_bounded_by_thread_count(self, receipt_result):
        speedups = projected_speedups(receipt_result)
        for threads, speedup in speedups.items():
            assert 0.0 < speedup <= threads + 1e-9

    def test_fd_task_queue_region_excluded(self, receipt_result):
        model = build_cost_model(receipt_result)
        assert all(region.name != "fd_task_queue" for region in model.regions)
        assert any(region.name == "fd_subsets" for region in model.regions)
