"""Unit tests for the synthetic bipartite graph generators."""

import numpy as np
import pytest

from repro.datasets.generators import (
    affiliation_graph,
    nested_tip_hierarchy,
    planted_blocks,
    power_law_bipartite,
    random_bipartite,
)
from repro.errors import DatasetError


class TestRandomBipartite:
    def test_sizes_and_bounds(self):
        graph = random_bipartite(50, 30, 200, seed=1)
        assert graph.n_u == 50
        assert graph.n_v == 30
        assert 0 < graph.n_edges <= 200

    def test_deterministic_for_seed(self):
        first = random_bipartite(20, 20, 80, seed=7)
        second = random_bipartite(20, 20, 80, seed=7)
        assert first == second

    def test_different_seeds_differ(self):
        first = random_bipartite(20, 20, 80, seed=7)
        second = random_bipartite(20, 20, 80, seed=8)
        assert first != second

    def test_zero_edges(self):
        assert random_bipartite(5, 5, 0, seed=1).n_edges == 0

    def test_invalid_parameters(self):
        with pytest.raises(DatasetError):
            random_bipartite(0, 5, 3)
        with pytest.raises(DatasetError):
            random_bipartite(5, 5, -1)
        with pytest.raises(DatasetError):
            random_bipartite(2, 2, 100)

    def test_full_density_is_complete(self):
        # Requesting every possible edge repeatedly converges to completeness.
        graph = random_bipartite(3, 3, 9, seed=1)
        assert graph.n_edges <= 9


class TestPowerLawBipartite:
    def test_sizes(self):
        graph = power_law_bipartite(100, 50, 400, seed=3)
        assert graph.n_u == 100 and graph.n_v == 50
        assert graph.n_edges > 0

    def test_smaller_exponent_gives_heavier_tail(self):
        light = power_law_bipartite(200, 200, 2000, exponent_v=3.5, seed=5)
        heavy = power_law_bipartite(200, 200, 2000, exponent_v=1.8, seed=5)
        assert heavy.degrees_v().max() > light.degrees_v().max()

    def test_heavier_v_tail_increases_u_side_wedges(self):
        light = power_law_bipartite(200, 200, 2000, exponent_v=3.5, seed=5)
        heavy = power_law_bipartite(200, 200, 2000, exponent_v=1.8, seed=5)
        assert heavy.wedge_endpoint_count("U") > light.wedge_endpoint_count("U")

    def test_deterministic(self):
        assert power_law_bipartite(50, 50, 300, seed=2) == power_law_bipartite(50, 50, 300, seed=2)

    def test_invalid_sizes(self):
        with pytest.raises(DatasetError):
            power_law_bipartite(0, 10, 5)


class TestPlantedBlocks:
    def test_blocks_are_dense(self):
        graph = planted_blocks(30, 20, [(6, 5)], block_density=1.0, seed=1)
        # The first 6 U vertices and 5 V vertices form a complete block.
        for u in range(6):
            assert set(graph.neighbors_u(u).tolist()) >= set(range(5))

    def test_background_vertices_sparse(self):
        graph = planted_blocks(30, 20, [(6, 5)], block_density=1.0, background_edges=0, seed=1)
        for u in range(6, 30):
            assert graph.degree_u(u) == 0

    def test_butterfly_rich(self):
        from repro.butterfly.counting import count_total_butterflies

        graph = planted_blocks(40, 30, [(8, 6), (6, 5)], block_density=1.0, seed=2)
        # A complete a x b block contributes C(a,2) * C(b,2) butterflies.
        assert count_total_butterflies(graph) == 28 * 15 + 15 * 10

    def test_blocks_exceeding_sizes_rejected(self):
        with pytest.raises(DatasetError):
            planted_blocks(5, 5, [(10, 2)])

    def test_background_edges_added(self):
        sparse = planted_blocks(30, 20, [(4, 4)], background_edges=0, seed=3)
        noisy = planted_blocks(30, 20, [(4, 4)], background_edges=100, seed=3)
        assert noisy.n_edges > sparse.n_edges


class TestAffiliationGraph:
    def test_sizes(self):
        graph = affiliation_graph(100, 40, 10, seed=4)
        assert graph.n_u == 100 and graph.n_v == 40
        assert graph.n_edges > 0

    def test_communities_create_butterflies(self):
        from repro.butterfly.counting import count_total_butterflies

        graph = affiliation_graph(100, 40, 10, community_size_u=15, community_size_v=6,
                                  membership_probability=0.8, seed=4)
        assert count_total_butterflies(graph) > 0

    def test_more_communities_more_edges(self):
        few = affiliation_graph(100, 40, 5, seed=4)
        many = affiliation_graph(100, 40, 30, seed=4)
        assert many.n_edges > few.n_edges

    def test_community_size_clamped_to_population(self):
        graph = affiliation_graph(5, 3, 2, community_size_u=50, community_size_v=50,
                                  membership_probability=1.0, seed=1)
        assert graph.n_edges == 15  # complete bipartite 5 x 3

    def test_deterministic(self):
        assert affiliation_graph(50, 20, 6, seed=9) == affiliation_graph(50, 20, 6, seed=9)


class TestNestedTipHierarchy:
    def test_structure_is_deterministic(self):
        assert nested_tip_hierarchy(3) == nested_tip_hierarchy(3)

    def test_levels_increase_size(self):
        small = nested_tip_hierarchy(2)
        large = nested_tip_hierarchy(4)
        assert large.n_u > small.n_u
        assert large.n_edges > small.n_edges

    def test_later_levels_have_larger_degree(self):
        graph = nested_tip_hierarchy(3, base_u=4, base_v=3, growth=2)
        degrees = graph.degrees_u()
        assert degrees[0] < degrees[-1]

    def test_single_level_is_complete_block(self):
        graph = nested_tip_hierarchy(1, base_u=3, base_v=4)
        assert graph.n_edges == 12

    def test_invalid_levels(self):
        with pytest.raises(DatasetError):
            nested_tip_hierarchy(0)
