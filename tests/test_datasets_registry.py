"""Unit tests for the paper-dataset stand-in registry."""

import pytest

from repro.datasets.registry import (
    CACHE_ENV,
    DATASETS,
    dataset_names,
    dataset_sides,
    load_dataset,
)
from repro.errors import DatasetError


class TestRegistryContents:
    def test_all_six_paper_datasets_registered(self):
        assert dataset_names() == ["it", "de", "or", "lj", "en", "tr"]

    def test_dataset_sides_enumerates_both_sides(self):
        sides = dataset_sides()
        assert len(sides) == 12
        assert ("it", "U") in sides and ("tr", "V") in sides

    def test_paper_stats_contain_table2_fields(self):
        for spec in DATASETS.values():
            stats = spec.paper_stats
            assert {"n_u", "n_v", "n_edges", "avg_degree_u", "avg_degree_v",
                    "butterflies_billions", "wedges_billions",
                    "theta_max_u", "theta_max_v"} <= set(stats)

    def test_descriptions_mention_konect(self):
        for spec in DATASETS.values():
            assert "KONECT" in spec.description


class TestLoading:
    @pytest.mark.parametrize("key", ["it", "de", "or", "lj", "en", "tr"])
    def test_generation_at_small_scale(self, key):
        graph = load_dataset(key, scale=0.1)
        assert graph.n_edges > 0
        assert graph.n_u > 0 and graph.n_v > 0
        assert graph.name == key

    def test_scale_changes_size(self):
        small = load_dataset("it", scale=0.1)
        large = load_dataset("it", scale=0.3)
        assert large.n_edges > small.n_edges
        assert large.n_u > small.n_u

    def test_deterministic_default_seed(self):
        assert load_dataset("de", scale=0.1) == load_dataset("de", scale=0.1)

    def test_explicit_seed_changes_graph(self):
        assert load_dataset("de", scale=0.1, seed=1) != load_dataset("de", scale=0.1, seed=2)

    def test_side_suffix_accepted(self):
        assert load_dataset("ItU", scale=0.1).name == "it"
        assert load_dataset("trv", scale=0.1).name == "tr"

    def test_unknown_dataset_rejected(self):
        with pytest.raises(DatasetError):
            load_dataset("facebook")

    def test_invalid_scale_rejected(self):
        with pytest.raises(DatasetError):
            load_dataset("it", scale=0.0)


class TestOnDiskCache:
    def test_cache_round_trip_is_identical(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV, str(tmp_path))
        fresh = load_dataset("it", scale=0.1)          # generates + stores
        cache_files = list(tmp_path.glob("*.npz"))
        assert len(cache_files) == 1
        cached = load_dataset("it", scale=0.1)         # served from disk
        assert cached == fresh
        assert cached.name == "it"

    def test_cache_keyed_by_scale_and_seed(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV, str(tmp_path))
        load_dataset("de", scale=0.1)
        load_dataset("de", scale=0.1, seed=99)
        load_dataset("de", scale=0.2)
        assert len(list(tmp_path.glob("de-*.npz"))) == 3

    def test_explicit_default_seed_shares_cache_entry(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV, str(tmp_path))
        implicit = load_dataset("or", scale=0.1)
        explicit = load_dataset("or", scale=0.1, seed=DATASETS["or"].default_seed)
        assert len(list(tmp_path.glob("or-*.npz"))) == 1
        assert implicit == explicit

    def test_corrupt_cache_entry_regenerates(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV, str(tmp_path))
        reference = load_dataset("lj", scale=0.1)
        (entry,) = tmp_path.glob("lj-*.npz")
        entry.write_bytes(b"not an npz file")
        assert load_dataset("lj", scale=0.1) == reference

    def test_disabled_without_env_var(self, tmp_path, monkeypatch):
        monkeypatch.delenv(CACHE_ENV, raising=False)
        load_dataset("en", scale=0.1)
        assert list(tmp_path.iterdir()) == []


class TestStructuralFidelity:
    def test_wedge_asymmetry_matches_paper_direction(self):
        # In every paper dataset, peeling the U side traverses more wedges
        # than peeling the V side (that is how the paper labels the sides).
        for key in dataset_names():
            graph = load_dataset(key, scale=0.4)
            assert graph.total_wedge_work("U") > graph.total_wedge_work("V"), key

    def test_graphs_contain_butterflies(self):
        from repro.butterfly.counting import count_total_butterflies

        for key in dataset_names():
            graph = load_dataset(key, scale=0.15)
            assert count_total_butterflies(graph) > 0, key

    def test_v_side_degree_skew_present(self):
        # Heavy-tailed V degrees (prolific editors / popular trackers) are
        # what make the U-side peel expensive.
        graph = load_dataset("tr", scale=0.5)
        degrees = graph.degrees_v()
        assert degrees.max() > 20 * max(degrees.mean(), 1.0)
