"""Unit tests for the distributed-memory CD simulation (Sec. 7 extension)."""

import numpy as np
import pytest

from repro.butterfly.counting import count_per_vertex_priority
from repro.core.cd import coarse_grained_decomposition
from repro.distributed.simulation import (
    partition_vertices,
    simulate_distributed_cd,
)
from repro.errors import ReproError
from repro.peeling.bup import bup_decomposition


class TestPartitioning:
    def test_block_partition_covers_all_workers(self, blocks_graph):
        owners = partition_vertices(blocks_graph, 4, strategy="block")
        assert owners.shape[0] == blocks_graph.n_u
        assert set(owners.tolist()) == {0, 1, 2, 3}
        # Block assignment is monotone in vertex id.
        assert np.all(np.diff(owners) >= 0)

    def test_hash_partition_deterministic_with_seed(self, blocks_graph):
        first = partition_vertices(blocks_graph, 3, strategy="hash", seed=5)
        second = partition_vertices(blocks_graph, 3, strategy="hash", seed=5)
        assert np.array_equal(first, second)
        assert first.max() < 3

    def test_work_balanced_partition_balances_wedge_work(self, medium_random_graph):
        owners = partition_vertices(medium_random_graph, 4, strategy="work-balanced")
        work = medium_random_graph.wedge_work_per_vertex("U").astype(float)
        loads = np.array([work[owners == worker].sum() for worker in range(4)])
        block_owners = partition_vertices(medium_random_graph, 4, strategy="block")
        block_loads = np.array([work[block_owners == worker].sum() for worker in range(4)])
        assert loads.max() <= block_loads.max()

    def test_single_worker(self, blocks_graph):
        owners = partition_vertices(blocks_graph, 1, strategy="work-balanced")
        assert set(owners.tolist()) == {0}

    def test_invalid_inputs(self, blocks_graph):
        with pytest.raises(ReproError):
            partition_vertices(blocks_graph, 0)
        with pytest.raises(ReproError):
            partition_vertices(blocks_graph, 2, strategy="magic")


class TestSimulation:
    def test_subsets_match_shared_memory_cd(self, community_graph):
        # The distributed replay performs the same peeling schedule as the
        # shared-memory CD (HUC disabled, DGM enabled), so the vertex
        # subsets and range bounds must coincide.
        counts = count_per_vertex_priority(community_graph).u_counts
        shared = coarse_grained_decomposition(
            community_graph, counts, 5, enable_huc=False, enable_dgm=True
        )
        distributed = simulate_distributed_cd(
            community_graph, 5, 4, initial_supports=counts
        )
        assert distributed.bounds == shared.bounds.tolist()
        assert len(distributed.subsets) == len(shared.subsets)
        for mine, theirs in zip(distributed.subsets, shared.subsets):
            assert sorted(mine.tolist()) == sorted(theirs.tolist())

    def test_subset_ranges_contain_tip_numbers(self, blocks_graph):
        reference = bup_decomposition(blocks_graph, "U").tip_numbers
        report = simulate_distributed_cd(blocks_graph, 4, 3)
        for index, subset in enumerate(report.subsets):
            lower, upper = report.bounds[index], report.bounds[index + 1]
            assert np.all(reference[subset] >= lower)
            assert np.all(reference[subset] < upper)

    def test_single_worker_has_no_remote_traffic(self, community_graph):
        report = simulate_distributed_cd(community_graph, 4, 1)
        assert report.remote_updates == 0
        assert report.aggregated_messages == 0
        assert report.remote_fraction == 0.0

    def test_more_workers_increase_remote_fraction(self, community_graph):
        few = simulate_distributed_cd(community_graph, 4, 2, strategy="hash", seed=1)
        many = simulate_distributed_cd(community_graph, 4, 8, strategy="hash", seed=1)
        assert many.remote_fraction >= few.remote_fraction
        # Total update count is a property of the peeling, not the partition.
        assert (few.local_updates + few.remote_updates
                == many.local_updates + many.remote_updates)

    def test_aggregation_bounded_by_raw_messages(self, community_graph):
        report = simulate_distributed_cd(community_graph, 4, 4)
        assert report.aggregated_messages <= report.remote_updates
        assert report.aggregated_messages <= (
            report.synchronization_rounds * report.n_workers * (report.n_workers - 1)
        )

    def test_per_worker_work_accounts_all_wedges(self, community_graph):
        report = simulate_distributed_cd(community_graph, 4, 3)
        assert report.per_worker_work.sum() == pytest.approx(report.wedges_traversed)
        assert report.load_imbalance >= 1.0

    def test_summary_keys(self, blocks_graph):
        summary = simulate_distributed_cd(blocks_graph, 3, 2).summary()
        assert {"n_workers", "remote_fraction", "aggregated_messages",
                "load_imbalance", "synchronization_rounds"} <= set(summary)

    def test_explicit_owner_array(self, blocks_graph):
        owners = np.zeros(blocks_graph.n_u, dtype=np.int64)
        owners[blocks_graph.n_u // 2:] = 1
        report = simulate_distributed_cd(blocks_graph, 3, 2, owners=owners)
        assert report.n_workers == 2
        assert report.local_updates + report.remote_updates > 0

    def test_owner_array_size_checked(self, blocks_graph):
        with pytest.raises(ReproError):
            simulate_distributed_cd(blocks_graph, 3, 2, owners=np.zeros(3, dtype=np.int64))
