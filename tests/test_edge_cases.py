"""Edge cases and failure-injection tests across the whole pipeline.

These exercise degenerate graphs (no edges, no butterflies, single vertices,
fully isolated sides) end-to-end through counting, all three decomposition
algorithms, hierarchy construction and the wing extension, plus a few
adversarial structures (long paths, perfect matchings) whose tip numbers are
known to be zero despite containing many wedges.
"""

import numpy as np
import pytest

from repro.analysis.hierarchy import TipHierarchy
from repro.analysis.verification import verify_against_bup
from repro.butterfly.counting import count_per_vertex
from repro.core.receipt import receipt_decomposition
from repro.graph.bipartite import BipartiteGraph
from repro.graph.builders import from_edge_list
from repro.peeling.bup import bup_decomposition
from repro.peeling.parbutterfly import parbutterfly_decomposition
from repro.wing.decomposition import wing_decomposition


def _path_graph(n_u: int) -> BipartiteGraph:
    """A zig-zag path u0 - v0 - u1 - v1 - ...: wedges everywhere, no butterflies."""
    edges = []
    for u in range(n_u):
        edges.append((u, u))
        if u + 1 < n_u:
            edges.append((u + 1, u))
    return BipartiteGraph(n_u, n_u, edges, name="path")


def _matching(n: int) -> BipartiteGraph:
    """A perfect matching: neither wedges nor butterflies."""
    return BipartiteGraph(n, n, [(i, i) for i in range(n)], name="matching")


class TestDegenerateGraphs:
    @pytest.mark.parametrize("builder", [
        lambda: BipartiteGraph(0, 0, []),
        lambda: BipartiteGraph(1, 1, []),
        lambda: BipartiteGraph(1, 1, [(0, 0)]),
        lambda: BipartiteGraph(5, 0, []),
        lambda: BipartiteGraph(0, 5, []),
    ])
    def test_every_algorithm_handles_trivial_graphs(self, builder):
        graph = builder()
        for side in ("U", "V"):
            bup = bup_decomposition(graph, side)
            parb = parbutterfly_decomposition(graph, side)
            receipt = receipt_decomposition(graph, side, n_partitions=2)
            assert np.array_equal(bup.tip_numbers, parb.tip_numbers)
            assert np.array_equal(bup.tip_numbers, receipt.tip_numbers)
            assert bup.tip_numbers.sum() == 0

    def test_path_graph_all_zero_tips(self):
        graph = _path_graph(12)
        assert count_per_vertex(graph).total_butterflies == 0
        result = receipt_decomposition(graph, "U", n_partitions=3)
        assert result.tip_numbers.sum() == 0
        assert verify_against_bup(graph, result).passed

    def test_matching_all_zero(self):
        graph = _matching(10)
        result = bup_decomposition(graph, "U")
        assert result.max_tip_number == 0
        assert wing_decomposition(graph).max_wing_number == 0

    def test_single_dense_column(self):
        # One V vertex connected to every U vertex: many wedges, no butterflies.
        graph = from_edge_list([(u, 0) for u in range(20)], n_u=20, n_v=1)
        result = receipt_decomposition(graph, "U", n_partitions=4)
        assert result.tip_numbers.sum() == 0
        assert result.counters.wedges_traversed >= 0

    def test_duplicate_heavy_multigraph_input(self):
        # Raw logs often repeat interactions; collapsed duplicates must not
        # change the decomposition.
        base_edges = [(0, 0), (0, 1), (1, 0), (1, 1), (2, 1)]
        clean = BipartiteGraph(3, 2, base_edges)
        noisy = BipartiteGraph(3, 2, base_edges * 5, allow_duplicates=True)
        assert clean == noisy
        assert np.array_equal(
            bup_decomposition(clean, "U").tip_numbers,
            bup_decomposition(noisy, "U").tip_numbers,
        )

    def test_vertex_ids_with_gaps(self):
        # Ids 0..9 exist but only 3 vertices carry edges.
        graph = from_edge_list([(0, 0), (5, 0), (9, 0), (0, 3), (5, 3)], n_u=10, n_v=4)
        result = receipt_decomposition(graph, "U", n_partitions=3)
        reference = bup_decomposition(graph, "U")
        assert np.array_equal(result.tip_numbers, reference.tip_numbers)
        assert result.tip_numbers[[1, 2, 3, 4, 6, 7, 8]].sum() == 0


class TestExtremePartitionCounts:
    def test_partitions_larger_than_vertex_count(self, blocks_graph):
        reference = bup_decomposition(blocks_graph, "U").tip_numbers
        result = receipt_decomposition(blocks_graph, "U", n_partitions=10_000)
        assert np.array_equal(result.tip_numbers, reference)

    def test_single_partition_equals_pure_fd(self, community_graph):
        reference = bup_decomposition(community_graph, "U").tip_numbers
        result = receipt_decomposition(community_graph, "U", n_partitions=1)
        assert np.array_equal(result.tip_numbers, reference)


class TestHierarchyOnDegenerateInputs:
    def test_hierarchy_of_butterfly_free_graph(self):
        graph = _path_graph(8)
        result = bup_decomposition(graph, "U")
        hierarchy = TipHierarchy(graph, result)
        assert hierarchy.levels.tolist() == [0]
        assert hierarchy.strongest_tip().size == 0

    def test_hierarchy_of_empty_graph(self):
        graph = BipartiteGraph(3, 3, [])
        result = bup_decomposition(graph, "U")
        hierarchy = TipHierarchy(graph, result)
        assert hierarchy.vertices_at(1).size == 0
        assert hierarchy.level_sizes() == {0: 3}
