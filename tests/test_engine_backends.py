"""Execution-engine tests: backend equivalence, descriptors, shared memory.

The engine's contract is that ``serial`` / ``thread`` / ``process`` backends
produce bit-identical results — tip numbers and the paper's work counters
(``wedges_traversed``, ``support_updates``) — because every backend runs the
same task body on the same inputs.  The property-based suite checks that
contract on randomly generated seeded graphs; the process pool is shared
across examples (that is what persistent pools are for), so the whole suite
stays fast.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.receipt import receipt_decomposition
from repro.datasets.generators import random_bipartite
from repro.engine import (
    BACKEND_NAMES,
    FdJob,
    FdTask,
    FdTaskResult,
    attach_fd_job,
    build_fd_tasks,
    create_backend,
    execute_fd_task,
    share_fd_job,
)
from repro.errors import ReproError
from repro.graph.bipartite import BipartiteGraph
from repro.parallel.threadpool import ExecutionContext


@pytest.fixture(scope="module")
def process_context():
    """One persistent two-worker process pool shared by the whole module."""
    with ExecutionContext(2, backend="process") as context:
        context.engine.warmup()
        yield context


def _decompose(graph, context=None, backend="serial", n_threads=1):
    return receipt_decomposition(
        graph, "U", n_partitions=4, backend=backend, n_threads=n_threads,
        context=context,
    )


def _assert_equivalent(reference, candidate):
    assert np.array_equal(reference.tip_numbers, candidate.tip_numbers)
    assert reference.counters.wedges_traversed == candidate.counters.wedges_traversed
    assert reference.counters.support_updates == candidate.counters.support_updates
    assert reference.counters.vertices_peeled == candidate.counters.vertices_peeled


class TestBackendEquivalence:
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1),
           n_edges=st.integers(min_value=0, max_value=160))
    def test_all_backends_bit_identical(self, process_context, seed, n_edges):
        graph = random_bipartite(24, 18, n_edges, seed=seed)
        serial = _decompose(graph)
        threaded = _decompose(graph, backend="thread", n_threads=2)
        processed = _decompose(graph, context=process_context)
        _assert_equivalent(serial, threaded)
        _assert_equivalent(serial, processed)

    def test_process_backend_on_fixture_graphs(self, blocks_graph, community_graph,
                                               process_context):
        for graph in (blocks_graph, community_graph):
            serial = _decompose(graph)
            processed = _decompose(graph, context=process_context)
            _assert_equivalent(serial, processed)
            # The per-phase FD counters must agree too, not just the totals.
            assert (serial.phase_counters["fd"].wedges_traversed
                    == processed.phase_counters["fd"].wedges_traversed)
            assert (serial.phase_counters["fd"].support_updates
                    == processed.phase_counters["fd"].support_updates)

    def test_empty_graph_through_process_backend(self, empty, process_context):
        serial = _decompose(empty)
        processed = _decompose(empty, context=process_context)
        _assert_equivalent(serial, processed)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            ExecutionContext(2, backend="gpu")
        with pytest.raises(ReproError):
            create_backend("gpu")


class TestTaskDescriptors:
    def test_build_fd_tasks_ranges_cover_subsets(self):
        subsets = [np.array([3, 1]), np.zeros(0, dtype=np.int64), np.array([0, 2, 4])]
        flat, tasks = build_fd_tasks(subsets, np.array([10.0, 0.0, 7.0]))
        assert flat.tolist() == [3, 1, 0, 2, 4]
        assert [(task.start, task.stop) for task in tasks] == [(0, 2), (2, 2), (2, 5)]
        assert [task.estimated_work for task in tasks] == [10.0, 0.0, 7.0]
        assert [task.n_vertices for task in tasks] == [2, 0, 3]

    def test_task_pickle_round_trip(self):
        task = FdTask(subset_index=5, start=16, stop=48, estimated_work=123.5)
        clone = pickle.loads(pickle.dumps(task))
        assert clone == task

    def test_result_pickle_round_trip(self):
        result = FdTaskResult(
            subset_index=2, n_vertices=3, induced_edges=7, induced_wedge_work=19,
            wedges_traversed=11, support_updates=4,
            tip_numbers=np.array([5, 0, 2], dtype=np.int64), elapsed_seconds=0.25,
        )
        clone = pickle.loads(pickle.dumps(result))
        assert clone.subset_index == result.subset_index
        assert clone.support_updates == result.support_updates
        assert np.array_equal(clone.tip_numbers, result.tip_numbers)

    def test_execute_fd_task_matches_direct_peel(self, blocks_graph):
        from repro.butterfly.counting import count_per_vertex_priority
        from repro.core.cd import coarse_grained_decomposition

        counts = count_per_vertex_priority(blocks_graph).u_counts
        cd = coarse_grained_decomposition(blocks_graph, counts, 3)
        flat, tasks = build_fd_tasks(cd.subsets)
        job = FdJob(graph=blocks_graph, subsets_flat=flat,
                    init_supports=cd.init_supports)
        results = [execute_fd_task(job, task) for task in tasks]
        assert sum(result.n_vertices for result in results) == blocks_graph.n_u
        tip_numbers = np.zeros(blocks_graph.n_u, dtype=np.int64)
        for result, subset in zip(results, cd.subsets):
            tip_numbers[subset] = result.tip_numbers
        from repro.peeling.bup import bup_decomposition

        assert np.array_equal(tip_numbers, bup_decomposition(blocks_graph, "U").tip_numbers)


class TestSharedMemoryStore:
    def test_share_attach_round_trip(self, blocks_graph):
        flat = np.arange(blocks_graph.n_u, dtype=np.int64)
        supports = np.arange(blocks_graph.n_u, dtype=np.int64) * 3
        job = FdJob(graph=blocks_graph, subsets_flat=flat, init_supports=supports,
                    enable_dgm=True, peel_kernel="reference")
        shared = share_fd_job(job)
        try:
            attached = attach_fd_job(shared.spec)
            try:
                assert attached.job.graph == blocks_graph
                assert attached.job.graph.n_edges == blocks_graph.n_edges
                assert np.array_equal(attached.job.subsets_flat, flat)
                assert np.array_equal(attached.job.init_supports, supports)
                assert attached.job.enable_dgm is True
                assert attached.job.peel_kernel == "reference"
                # The store is write-once: attached views must be read-only.
                assert not attached.job.subsets_flat.flags.writeable
            finally:
                attached.close()
        finally:
            shared.destroy()

    def test_share_empty_graph(self, empty):
        job = FdJob(graph=empty, subsets_flat=np.zeros(0, dtype=np.int64),
                    init_supports=np.zeros(empty.n_u, dtype=np.int64))
        shared = share_fd_job(job)
        try:
            attached = attach_fd_job(shared.spec)
            try:
                assert attached.job.graph.n_edges == 0
                assert attached.job.subsets_flat.size == 0
            finally:
                attached.close()
        finally:
            shared.destroy()

    def test_spec_is_picklable_and_small(self, blocks_graph):
        job = FdJob(graph=blocks_graph, subsets_flat=np.zeros(1, dtype=np.int64),
                    init_supports=np.zeros(blocks_graph.n_u, dtype=np.int64))
        shared = share_fd_job(job)
        try:
            payload = pickle.dumps(shared.spec)
            # The whole point: what crosses the process boundary is a spec,
            # not the graph.
            assert len(payload) < 2048
            assert pickle.loads(payload) == shared.spec
        finally:
            shared.destroy()


class TestCsrArraysSurface:
    def test_from_csr_arrays_round_trip(self, medium_random_graph):
        arrays = medium_random_graph.csr_arrays()
        clone = BipartiteGraph.from_csr_arrays(
            medium_random_graph.n_u, medium_random_graph.n_v,
            arrays["u_offsets"], arrays["u_neighbors"],
            arrays["v_offsets"], arrays["v_neighbors"],
            name="clone",
        )
        assert clone == medium_random_graph
        assert clone.total_wedge_work("U") == medium_random_graph.total_wedge_work("U")

    def test_from_csr_arrays_validates_shapes(self, blocks_graph):
        arrays = blocks_graph.csr_arrays()
        with pytest.raises(Exception):
            BipartiteGraph.from_csr_arrays(
                blocks_graph.n_u + 1, blocks_graph.n_v,
                arrays["u_offsets"], arrays["u_neighbors"],
                arrays["v_offsets"], arrays["v_neighbors"],
            )


class TestContextIntegration:
    def test_run_tasks_accounts_work_per_task(self):
        context = ExecutionContext()
        context.run_tasks([lambda: 1, lambda: 2], name="weighted",
                          work_per_task=[10.0, 30.0])
        region = context.parallel_regions[-1]
        assert region.total_work == 40.0
        assert region.task_work == [10.0, 30.0]

    def test_run_tasks_rejects_mismatched_work(self):
        context = ExecutionContext()
        with pytest.raises(ValueError):
            context.run_tasks([lambda: 1, lambda: 2], work_per_task=[1.0])

    def test_run_fd_tasks_defaults_to_descriptor_work(self, blocks_graph):
        from repro.butterfly.counting import count_per_vertex_priority
        from repro.core.cd import coarse_grained_decomposition

        counts = count_per_vertex_priority(blocks_graph).u_counts
        cd = coarse_grained_decomposition(blocks_graph, counts, 3)
        flat, tasks = build_fd_tasks(cd.subsets, np.array([5.0] * len(cd.subsets)))
        job = FdJob(graph=blocks_graph, subsets_flat=flat,
                    init_supports=cd.init_supports)
        context = ExecutionContext()
        context.run_fd_tasks(job, tasks)
        region = context.parallel_regions[-1]
        assert region.total_work == 5.0 * len(tasks)
        with pytest.raises(ValueError):
            context.run_fd_tasks(job, tasks, work_per_task=[1.0])

    def test_thread_backend_shares_context_executor(self):
        with ExecutionContext(3, backend="thread") as context:
            engine = context.engine
            assert engine._executor is context._ensure_executor()
            assert engine._owns_executor is False
        # Exiting the context shuts the shared pool down exactly once.
        assert context._executor is None


def test_backend_names_stay_in_sync():
    from repro.parallel.threadpool import BACKEND_NAMES as CONTEXT_NAMES

    assert tuple(CONTEXT_NAMES) == tuple(BACKEND_NAMES)
