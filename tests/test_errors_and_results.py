"""Unit tests for the error hierarchy and shared result/counter types."""

import numpy as np
import pytest

from repro.errors import (
    BudgetExceededError,
    DatasetError,
    DecompositionError,
    GraphConstructionError,
    GraphFormatError,
    ReproError,
    VertexSideError,
)
from repro.peeling.base import PeelingCounters, TipDecompositionResult


class TestErrorHierarchy:
    @pytest.mark.parametrize("error_type", [
        GraphConstructionError, GraphFormatError, VertexSideError,
        DecompositionError, BudgetExceededError, DatasetError,
    ])
    def test_all_derive_from_repro_error(self, error_type):
        assert issubclass(error_type, ReproError)
        assert issubclass(error_type, Exception)

    def test_budget_error_payload(self):
        error = BudgetExceededError("out of budget", wedges_traversed=42, elapsed_seconds=1.5)
        assert error.wedges_traversed == 42
        assert error.elapsed_seconds == 1.5
        assert "out of budget" in str(error)

    def test_catching_base_class(self):
        with pytest.raises(ReproError):
            raise DatasetError("nope")


class TestPeelingCounters:
    def test_merge_accumulates_all_fields(self):
        first = PeelingCounters(wedges_traversed=10, counting_wedges=4, peeling_wedges=6,
                                support_updates=3, synchronization_rounds=2,
                                vertices_peeled=5, recount_invocations=1,
                                dgm_compactions=1, elapsed_seconds=0.5)
        second = PeelingCounters(wedges_traversed=1, counting_wedges=1,
                                 synchronization_rounds=1, elapsed_seconds=0.25)
        first.merge(second)
        assert first.wedges_traversed == 11
        assert first.counting_wedges == 5
        assert first.synchronization_rounds == 3
        assert first.elapsed_seconds == pytest.approx(0.75)

    def test_as_dict_round_trip(self):
        counters = PeelingCounters(wedges_traversed=7)
        data = counters.as_dict()
        assert data["wedges_traversed"] == 7
        assert set(data) == {
            "wedges_traversed", "counting_wedges", "peeling_wedges", "support_updates",
            "synchronization_rounds", "vertices_peeled", "recount_invocations",
            "dgm_compactions", "elapsed_seconds", "peak_scratch_bytes",
        }


class TestTipDecompositionResult:
    def _result(self):
        return TipDecompositionResult(
            tip_numbers=np.array([0, 2, 2, 5]),
            side="u",
            initial_butterflies=np.array([0, 3, 4, 9]),
            algorithm="synthetic",
        )

    def test_side_normalised(self):
        assert self._result().side == "U"

    def test_max_and_lookup(self):
        result = self._result()
        assert result.max_tip_number == 5
        assert result.tip_number(1) == 2
        assert result.n_vertices == 4

    def test_histogram(self):
        assert self._result().histogram() == {0: 1, 2: 2, 5: 1}

    def test_vertices_with_tip_at_least(self):
        assert self._result().vertices_with_tip_at_least(2).tolist() == [1, 2, 3]
        assert self._result().vertices_with_tip_at_least(6).tolist() == []

    def test_cumulative_distribution(self):
        values, fractions = self._result().cumulative_distribution()
        assert values.tolist() == [0, 2, 2, 5]
        assert fractions[-1] == pytest.approx(1.0)

    def test_same_tip_numbers(self):
        assert self._result().same_tip_numbers(self._result())
        other = self._result()
        other.tip_numbers[0] = 1
        assert not self._result().same_tip_numbers(other)

    def test_summary_keys(self):
        summary = self._result().summary()
        assert summary["algorithm"] == "synthetic"
        assert summary["max_tip_number"] == 5
        assert "wedges_traversed" in summary

    def test_empty_result(self):
        result = TipDecompositionResult(
            tip_numbers=np.array([], dtype=np.int64), side="V",
            initial_butterflies=np.array([], dtype=np.int64), algorithm="synthetic",
        )
        assert result.max_tip_number == 0
        assert result.n_vertices == 0
