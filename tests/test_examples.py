"""Smoke test every script in examples/ so they cannot silently rot.

Each example is executed as a real subprocess (the way a user would run
it), with small arguments where the script accepts any, and must exit
cleanly while producing output.  New example scripts are picked up
automatically by the glob.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES_DIR = REPO_ROOT / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))

#: Arguments keeping argument-taking examples at smoke-test scale.
EXAMPLE_ARGS = {
    "algorithm_comparison.py": ["it", "0.08"],
}


def _example_env() -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def test_examples_exist():
    assert len(EXAMPLES) >= 5


@pytest.mark.parametrize("example", EXAMPLES, ids=lambda path: path.name)
def test_example_runs_cleanly(example, tmp_path):
    completed = subprocess.run(
        [sys.executable, str(example), *EXAMPLE_ARGS.get(example.name, [])],
        capture_output=True,
        text=True,
        timeout=240,
        env=_example_env(),
        cwd=tmp_path,  # examples must not depend on the CWD or litter the repo
    )
    assert completed.returncode == 0, (
        f"{example.name} failed\nstdout:\n{completed.stdout}\nstderr:\n{completed.stderr}"
    )
    assert completed.stdout.strip(), f"{example.name} printed nothing"
