"""Unit tests for the core BipartiteGraph data structure."""

import numpy as np
import pytest

from repro.errors import GraphConstructionError, VertexSideError
from repro.graph.bipartite import BipartiteGraph, opposite_side, validate_side
from repro.graph.builders import complete_bipartite, from_edge_list


class TestConstruction:
    def test_basic_construction(self):
        graph = BipartiteGraph(3, 2, [(0, 0), (1, 1), (2, 0)])
        assert graph.n_u == 3
        assert graph.n_v == 2
        assert graph.n_edges == 3
        assert graph.n_vertices == 5

    def test_empty_graph(self):
        graph = BipartiteGraph(4, 3, [])
        assert graph.n_edges == 0
        assert graph.degrees_u().tolist() == [0, 0, 0, 0]
        assert graph.degrees_v().tolist() == [0, 0, 0]

    def test_zero_vertices(self):
        graph = BipartiteGraph(0, 0, [])
        assert graph.n_vertices == 0
        assert list(graph.edges()) == []

    def test_isolated_vertices_allowed(self):
        graph = BipartiteGraph(5, 5, [(0, 0)])
        assert graph.degree_u(4) == 0
        assert graph.degree_v(4) == 0

    def test_negative_sizes_rejected(self):
        with pytest.raises(GraphConstructionError):
            BipartiteGraph(-1, 3, [])

    def test_out_of_range_u_rejected(self):
        with pytest.raises(GraphConstructionError, match="U vertex"):
            BipartiteGraph(2, 2, [(2, 0)])

    def test_out_of_range_v_rejected(self):
        with pytest.raises(GraphConstructionError, match="V vertex"):
            BipartiteGraph(2, 2, [(0, 5)])

    def test_negative_vertex_rejected(self):
        with pytest.raises(GraphConstructionError, match="non-negative"):
            BipartiteGraph(2, 2, [(0, -1)])

    def test_duplicate_edges_rejected_by_default(self):
        with pytest.raises(GraphConstructionError, match="duplicate"):
            BipartiteGraph(2, 2, [(0, 0), (0, 0)])

    def test_duplicate_edges_collapsed_when_allowed(self):
        graph = BipartiteGraph(2, 2, [(0, 0), (0, 0), (1, 1)], allow_duplicates=True)
        assert graph.n_edges == 2

    def test_non_integer_edges_rejected(self):
        with pytest.raises(GraphConstructionError):
            BipartiteGraph(2, 2, [("a", "b")])

    def test_bad_edge_shape_rejected(self):
        with pytest.raises(GraphConstructionError):
            BipartiteGraph(2, 2, [(0, 1, 2)])

    def test_edge_array_input(self):
        edges = np.array([[0, 1], [1, 0]], dtype=np.int64)
        graph = BipartiteGraph(2, 2, edges)
        assert graph.n_edges == 2


class TestAccessors:
    def test_degrees(self, tiny_graph):
        assert tiny_graph.degree_u(1) == 4
        assert tiny_graph.degree_u(2) == 5
        assert tiny_graph.degrees_u().sum() == tiny_graph.n_edges
        assert tiny_graph.degrees_v().sum() == tiny_graph.n_edges

    def test_neighbors_sorted(self, tiny_graph):
        for u in range(tiny_graph.n_u):
            neighbors = tiny_graph.neighbors_u(u)
            assert np.all(np.diff(neighbors) > 0)
        for v in range(tiny_graph.n_v):
            neighbors = tiny_graph.neighbors_v(v)
            assert np.all(np.diff(neighbors) > 0)

    def test_adjacency_symmetry(self, tiny_graph):
        for u, v in tiny_graph.edges():
            assert u in tiny_graph.neighbors_v(v).tolist()
            assert v in tiny_graph.neighbors_u(u).tolist()

    def test_has_edge(self, tiny_graph):
        assert tiny_graph.has_edge(0, 0)
        assert not tiny_graph.has_edge(0, 6)
        assert not tiny_graph.has_edge(100, 0)
        assert not tiny_graph.has_edge(0, 100)

    def test_edges_iteration_matches_edge_array(self, tiny_graph):
        listed = list(tiny_graph.edges())
        array = tiny_graph.edge_array()
        assert len(listed) == array.shape[0] == tiny_graph.n_edges
        assert listed == [(int(u), int(v)) for u, v in array]

    def test_edge_array_cached(self, tiny_graph):
        assert tiny_graph.edge_array() is tiny_graph.edge_array()

    def test_side_dispatch(self, tiny_graph):
        assert tiny_graph.side_size("U") == tiny_graph.n_u
        assert tiny_graph.side_size("V") == tiny_graph.n_v
        assert tiny_graph.degree(1, "U") == tiny_graph.degree_u(1)
        assert tiny_graph.degree(1, "V") == tiny_graph.degree_v(1)
        assert np.array_equal(tiny_graph.neighbors(2, "U"), tiny_graph.neighbors_u(2))
        assert np.array_equal(tiny_graph.degrees("V"), tiny_graph.degrees_v())

    def test_csr_shapes(self, tiny_graph):
        offsets, neighbors = tiny_graph.csr("U")
        assert offsets.shape[0] == tiny_graph.n_u + 1
        assert neighbors.shape[0] == tiny_graph.n_edges
        offsets_v, neighbors_v = tiny_graph.csr("V")
        assert offsets_v.shape[0] == tiny_graph.n_v + 1
        assert neighbors_v.shape[0] == tiny_graph.n_edges

    def test_invalid_side_raises(self, tiny_graph):
        with pytest.raises(VertexSideError):
            tiny_graph.degrees("W")

    def test_equality_and_hash(self, tiny_graph):
        clone = from_edge_list(list(tiny_graph.edges()), n_u=8, n_v=7)
        assert clone == tiny_graph
        assert hash(clone) == hash(tiny_graph)
        different = from_edge_list([(0, 0)], n_u=8, n_v=7)
        assert different != tiny_graph
        assert tiny_graph != "not a graph"


class TestSideHelpers:
    def test_validate_side(self):
        assert validate_side("u") == "U"
        assert validate_side("V") == "V"
        with pytest.raises(VertexSideError):
            validate_side("X")

    def test_opposite_side(self):
        assert opposite_side("U") == "V"
        assert opposite_side("v") == "U"


class TestWedgeStatistics:
    def test_wedge_endpoint_count_complete(self, complete_4x3):
        # K_{4,3}: wedges with endpoints in U = |V| * C(|U|, 2) = 3 * 6 = 18.
        assert complete_4x3.wedge_endpoint_count("U") == 18
        assert complete_4x3.wedge_endpoint_count("V") == 4 * 3

    def test_wedge_work_per_vertex(self, complete_4x3):
        # Every U vertex touches all 3 V vertices of degree 4 -> work 12.
        work = complete_4x3.wedge_work_per_vertex("U")
        assert work.tolist() == [12, 12, 12, 12]
        assert complete_4x3.total_wedge_work("U") == 48

    def test_wedge_work_star(self, star_graph):
        # Star: every leaf sees the center of degree 6.
        assert star_graph.wedge_work_per_vertex("U").tolist() == [6] * 6
        assert star_graph.wedge_endpoint_count("U") == 15  # C(6, 2)
        assert star_graph.wedge_endpoint_count("V") == 0

    def test_empty_graph_wedges(self, empty):
        assert empty.wedge_endpoint_count("U") == 0
        assert empty.total_wedge_work("U") == 0
        assert empty.counting_wedge_bound() == 0

    def test_counting_bound_below_peel_work(self, blocks_graph):
        assert blocks_graph.counting_wedge_bound() <= blocks_graph.total_wedge_work("U")
        assert blocks_graph.counting_wedge_bound() <= blocks_graph.total_wedge_work("V")

    def test_counting_bound_complete(self, complete_4x3):
        # Every edge contributes min(4, 3) = 3.
        assert complete_4x3.counting_wedge_bound() == 12 * 3


class TestSwapSides:
    def test_swap_sides_roundtrip(self, tiny_graph):
        swapped = tiny_graph.swap_sides()
        assert swapped.n_u == tiny_graph.n_v
        assert swapped.n_v == tiny_graph.n_u
        assert swapped.n_edges == tiny_graph.n_edges
        assert sorted((v, u) for u, v in tiny_graph.edges()) == sorted(swapped.edges())

    def test_swap_preserves_wedge_statistics(self, blocks_graph):
        swapped = blocks_graph.swap_sides()
        assert swapped.wedge_endpoint_count("U") == blocks_graph.wedge_endpoint_count("V")
        assert swapped.total_wedge_work("V") == blocks_graph.total_wedge_work("U")

    def test_double_swap_equals_original(self, tiny_graph):
        assert tiny_graph.swap_sides().swap_sides() == tiny_graph


class TestInducedSubgraph:
    def test_induced_keeps_only_selected_edges(self, tiny_graph):
        induced = tiny_graph.induced_on_u_subset(np.array([1, 2, 4]))
        assert induced.graph.n_u == 3
        assert induced.graph.n_v == tiny_graph.n_v
        expected_edges = sum(tiny_graph.degree_u(u) for u in (1, 2, 4))
        assert induced.graph.n_edges == expected_edges

    def test_induced_id_mapping_roundtrip(self, tiny_graph):
        subset = np.array([5, 2, 7])
        induced = tiny_graph.induced_on_u_subset(subset)
        for new_id, old_id in enumerate(subset):
            assert induced.to_parent_u(new_id) == old_id
            assert induced.to_induced_u(int(old_id)) == new_id
        assert induced.to_induced_u(0) == -1

    def test_induced_preserves_neighborhoods(self, tiny_graph):
        subset = np.array([2, 3])
        induced = tiny_graph.induced_on_u_subset(subset)
        for new_id, old_id in enumerate(subset):
            assert np.array_equal(
                induced.graph.neighbors_u(new_id), tiny_graph.neighbors_u(int(old_id))
            )

    def test_induced_empty_subset(self, tiny_graph):
        induced = tiny_graph.induced_on_u_subset(np.array([], dtype=np.int64))
        assert induced.graph.n_u == 0
        assert induced.graph.n_edges == 0

    def test_induced_rejects_out_of_range(self, tiny_graph):
        with pytest.raises(GraphConstructionError):
            tiny_graph.induced_on_u_subset(np.array([100]))

    def test_induced_rejects_duplicates(self, tiny_graph):
        with pytest.raises(GraphConstructionError):
            tiny_graph.induced_on_u_subset(np.array([1, 1]))

    def test_induced_full_set_is_isomorphic(self, tiny_graph):
        induced = tiny_graph.induced_on_u_subset(np.arange(tiny_graph.n_u))
        assert induced.graph.n_edges == tiny_graph.n_edges
        assert induced.graph.wedge_endpoint_count("U") == tiny_graph.wedge_endpoint_count("U")
