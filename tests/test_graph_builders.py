"""Unit tests for graph construction helpers."""

import numpy as np
import pytest

from repro.errors import GraphConstructionError
from repro.graph.builders import (
    complete_bipartite,
    empty_graph,
    from_biadjacency,
    from_edge_list,
    from_labelled_edges,
    from_networkx,
    star,
)


class TestFromEdgeList:
    def test_infers_sizes(self):
        graph = from_edge_list([(0, 0), (3, 2)])
        assert graph.n_u == 4
        assert graph.n_v == 3

    def test_explicit_sizes(self):
        graph = from_edge_list([(0, 0)], n_u=10, n_v=5)
        assert graph.n_u == 10
        assert graph.n_v == 5

    def test_empty_edge_list(self):
        graph = from_edge_list([])
        assert graph.n_u == 0 and graph.n_v == 0 and graph.n_edges == 0

    def test_numpy_input(self):
        graph = from_edge_list(np.array([[0, 1], [1, 0]]))
        assert graph.n_edges == 2

    def test_rejects_malformed(self):
        with pytest.raises(GraphConstructionError):
            from_edge_list([(1, 2, 3)])

    def test_name_is_kept(self):
        graph = from_edge_list([(0, 0)], name="demo")
        assert graph.name == "demo"


class TestFromLabelledEdges:
    def test_labels_to_dense_ids(self):
        labelled = from_labelled_edges([("alice", "spam"), ("bob", "spam"), ("alice", "ham")])
        assert labelled.graph.n_u == 2
        assert labelled.graph.n_v == 2
        assert labelled.graph.n_edges == 3
        assert labelled.u_index["alice"] == 0
        assert labelled.v_label(0) == "spam"

    def test_duplicate_labelled_edges_collapsed(self):
        labelled = from_labelled_edges([("a", "x"), ("a", "x")])
        assert labelled.graph.n_edges == 1

    def test_sides_have_independent_namespaces(self):
        labelled = from_labelled_edges([("n1", "n1"), ("n2", "n1")])
        assert labelled.graph.n_u == 2
        assert labelled.graph.n_v == 1

    def test_tip_numbers_by_label(self):
        labelled = from_labelled_edges([("a", "x"), ("b", "x")])
        mapping = labelled.tip_numbers_by_label([5, 7])
        assert mapping == {"a": 5, "b": 7}

    def test_label_roundtrip(self):
        labelled = from_labelled_edges([("p", "q"), ("r", "s")])
        for label, index in labelled.u_index.items():
            assert labelled.u_label(index) == label


class TestFromBiadjacency:
    def test_dense_matrix(self):
        matrix = np.array([[1, 0, 1], [0, 1, 0]])
        graph = from_biadjacency(matrix)
        assert graph.n_u == 2
        assert graph.n_v == 3
        assert graph.n_edges == 3
        assert graph.has_edge(0, 2)
        assert not graph.has_edge(0, 1)

    def test_rejects_non_2d(self):
        with pytest.raises(GraphConstructionError):
            from_biadjacency(np.zeros((2, 2, 2)))

    def test_all_zero_matrix(self):
        graph = from_biadjacency(np.zeros((3, 4)))
        assert graph.n_edges == 0
        assert graph.n_u == 3 and graph.n_v == 4


class TestFromNetworkx:
    def test_with_bipartite_attribute(self):
        networkx = pytest.importorskip("networkx")
        nx_graph = networkx.Graph()
        nx_graph.add_nodes_from(["u1", "u2"], bipartite=0)
        nx_graph.add_nodes_from(["v1", "v2"], bipartite=1)
        nx_graph.add_edges_from([("u1", "v1"), ("u2", "v1"), ("u2", "v2")])
        labelled = from_networkx(nx_graph)
        assert labelled.graph.n_u == 2
        assert labelled.graph.n_v == 2
        assert labelled.graph.n_edges == 3

    def test_with_explicit_u_nodes(self):
        networkx = pytest.importorskip("networkx")
        nx_graph = networkx.Graph()
        nx_graph.add_edges_from([("a", "x"), ("b", "x")])
        labelled = from_networkx(nx_graph, u_nodes=["a", "b"])
        assert labelled.graph.n_u == 2
        assert labelled.graph.n_v == 1

    def test_rejects_same_side_edge(self):
        networkx = pytest.importorskip("networkx")
        nx_graph = networkx.Graph()
        nx_graph.add_edges_from([("a", "b")])
        with pytest.raises(GraphConstructionError):
            from_networkx(nx_graph, u_nodes=["a", "b"])

    def test_rejects_missing_partition(self):
        networkx = pytest.importorskip("networkx")
        nx_graph = networkx.Graph()
        nx_graph.add_edges_from([("a", "b")])
        with pytest.raises(GraphConstructionError):
            from_networkx(nx_graph)


class TestCannedGraphs:
    def test_complete_bipartite(self):
        graph = complete_bipartite(3, 5)
        assert graph.n_edges == 15
        assert graph.degrees_u().tolist() == [5, 5, 5]
        assert graph.degrees_v().tolist() == [3, 3, 3, 3, 3]

    def test_star_v_center(self):
        graph = star(4, center_side="V")
        assert graph.n_u == 4 and graph.n_v == 1
        assert graph.degrees_v().tolist() == [4]

    def test_star_u_center(self):
        graph = star(4, center_side="U")
        assert graph.n_u == 1 and graph.n_v == 4
        assert graph.degrees_u().tolist() == [4]

    def test_empty_graph(self):
        graph = empty_graph(3, 2)
        assert graph.n_edges == 0
        assert graph.name == "empty"
