"""Unit tests for the peelable adjacency view and DGM compaction."""

import numpy as np
import pytest

from repro.graph.builders import complete_bipartite
from repro.graph.dynamic import PeelableAdjacency


class TestBasics:
    def test_initial_state(self, tiny_graph):
        adjacency = PeelableAdjacency(tiny_graph, "U")
        assert adjacency.n_alive == tiny_graph.n_u
        assert adjacency.is_alive(0)
        assert adjacency.alive_vertices().tolist() == list(range(tiny_graph.n_u))
        assert adjacency.peel_side == "U"
        assert adjacency.graph is tiny_graph

    def test_mark_peeled(self, tiny_graph):
        adjacency = PeelableAdjacency(tiny_graph, "U")
        adjacency.mark_peeled(3)
        assert not adjacency.is_alive(3)
        assert adjacency.n_alive == tiny_graph.n_u - 1

    def test_mark_peeled_many(self, tiny_graph):
        adjacency = PeelableAdjacency(tiny_graph, "U")
        adjacency.mark_peeled_many(np.array([0, 1, 2]))
        assert adjacency.n_alive == tiny_graph.n_u - 3
        assert set(adjacency.alive_vertices().tolist()) == {3, 4, 5, 6, 7}

    def test_peel_neighbors_matches_parent(self, tiny_graph):
        adjacency = PeelableAdjacency(tiny_graph, "U")
        for u in range(tiny_graph.n_u):
            assert np.array_equal(adjacency.peel_neighbors(u), tiny_graph.neighbors_u(u))

    def test_v_side_peeling(self, tiny_graph):
        adjacency = PeelableAdjacency(tiny_graph, "V")
        assert adjacency.n_alive == tiny_graph.n_v
        assert np.array_equal(adjacency.center_neighbors(0), tiny_graph.neighbors_u(0))

    def test_two_hop_multiset_size(self, complete_4x3):
        adjacency = PeelableAdjacency(complete_4x3, "U")
        multiset = adjacency.two_hop_multiset(0)
        # 3 centers, each listing all 4 U vertices.
        assert multiset.shape[0] == 12

    def test_two_hop_multiset_isolated_vertex(self):
        graph = complete_bipartite(2, 2)
        # Build a graph with an isolated U vertex by over-allocating ids.
        from repro.graph.bipartite import BipartiteGraph

        graph = BipartiteGraph(3, 2, list(graph.edges()))
        adjacency = PeelableAdjacency(graph, "U")
        assert adjacency.two_hop_multiset(2).size == 0


class TestCompaction:
    def test_compact_removes_peeled_entries(self, complete_4x3):
        adjacency = PeelableAdjacency(complete_4x3, "U", enable_dgm=True)
        adjacency.mark_peeled(0)
        adjacency.mark_peeled(1)
        removed = adjacency.compact()
        # Each of the 3 center vertices loses 2 entries.
        assert removed == 6
        assert adjacency.entries_removed == 6
        for center in range(complete_4x3.n_v):
            assert set(adjacency.center_neighbors(center).tolist()) == {2, 3}

    def test_two_hop_excludes_compacted(self, complete_4x3):
        adjacency = PeelableAdjacency(complete_4x3, "U", enable_dgm=True)
        adjacency.mark_peeled(0)
        before = adjacency.two_hop_multiset(1).shape[0]
        adjacency.compact()
        after = adjacency.two_hop_multiset(1).shape[0]
        assert after == before - 3  # vertex 0 removed from all 3 centers

    def test_maybe_compact_respects_interval(self, complete_4x3):
        adjacency = PeelableAdjacency(
            complete_4x3, "U", enable_dgm=True, compaction_interval=10
        )
        adjacency.mark_peeled(0)
        adjacency.record_traversal(5)
        assert not adjacency.maybe_compact()
        adjacency.record_traversal(5)
        assert adjacency.maybe_compact()
        assert adjacency.compactions_performed == 1
        # Counter resets after compaction.
        assert not adjacency.maybe_compact()

    def test_disabled_dgm_never_compacts(self, complete_4x3):
        adjacency = PeelableAdjacency(complete_4x3, "U", enable_dgm=False,
                                      compaction_interval=1)
        adjacency.mark_peeled(0)
        adjacency.record_traversal(100)
        assert not adjacency.maybe_compact()
        assert adjacency.compactions_performed == 0
        # Stale entries remain visible.
        assert 0 in adjacency.center_neighbors(0).tolist()

    def test_default_interval_is_edge_count(self, blocks_graph):
        adjacency = PeelableAdjacency(blocks_graph, "U")
        assert adjacency.compaction_interval == blocks_graph.n_edges

    def test_current_center_sizes_shrink(self, complete_4x3):
        adjacency = PeelableAdjacency(complete_4x3, "U", enable_dgm=True)
        assert adjacency.current_center_sizes().tolist() == [4, 4, 4]
        adjacency.mark_peeled_many(np.array([0, 1, 2]))
        adjacency.compact()
        assert adjacency.current_center_sizes().tolist() == [1, 1, 1]

    def test_compact_idempotent(self, complete_4x3):
        adjacency = PeelableAdjacency(complete_4x3, "U", enable_dgm=True)
        adjacency.mark_peeled(0)
        first = adjacency.compact()
        second = adjacency.compact()
        assert first == 3
        assert second == 0
