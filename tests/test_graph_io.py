"""Unit tests for graph file I/O."""

import gzip

import pytest

from repro.errors import GraphFormatError
from repro.graph.builders import from_edge_list
from repro.graph.io import (
    iter_graph_files,
    load_graph,
    read_edge_list,
    read_konect,
    read_matrix_market,
    write_edge_list,
    write_matrix_market,
)


@pytest.fixture
def sample_graph():
    return from_edge_list([(0, 0), (0, 1), (1, 0), (2, 2)], n_u=3, n_v=3, name="sample")


class TestEdgeList:
    def test_roundtrip(self, sample_graph, tmp_path):
        path = tmp_path / "graph.tsv"
        write_edge_list(sample_graph, path)
        loaded = read_edge_list(path, n_u=3, n_v=3)
        assert loaded == sample_graph

    def test_roundtrip_one_based(self, sample_graph, tmp_path):
        path = tmp_path / "graph.tsv"
        write_edge_list(sample_graph, path, one_based=True)
        loaded = read_edge_list(path, one_based=True, n_u=3, n_v=3)
        assert loaded == sample_graph

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("# comment\n\n% other comment\n0 1\n1 0\n")
        graph = read_edge_list(path)
        assert graph.n_edges == 2

    def test_extra_columns_ignored(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("0 1 3.5 1234\n1 1 2.0 999\n")
        graph = read_edge_list(path)
        assert graph.n_edges == 2

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0\n")
        with pytest.raises(GraphFormatError, match="two columns"):
            read_edge_list(path)

    def test_non_integer_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("a b\n")
        with pytest.raises(GraphFormatError, match="non-integer"):
            read_edge_list(path)

    def test_gzip_support(self, tmp_path):
        path = tmp_path / "graph.txt.gz"
        with gzip.open(path, "wt") as handle:
            handle.write("0 0\n1 1\n")
        graph = read_edge_list(path)
        assert graph.n_edges == 2

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("")
        graph = read_edge_list(path)
        assert graph.n_edges == 0

    def test_dataset_name_defaults_to_stem(self, tmp_path):
        path = tmp_path / "mygraph.tsv"
        path.write_text("0 0\n")
        assert read_edge_list(path).name == "mygraph"


class TestKonect:
    def test_one_based_with_header(self, tmp_path):
        path = tmp_path / "out.test"
        path.write_text("% bip unweighted\n1 1\n2 1\n2 2\n")
        graph = read_konect(path)
        assert graph.n_u == 2
        assert graph.n_v == 2
        assert graph.has_edge(0, 0)
        assert graph.has_edge(1, 1)

    def test_zero_id_after_adjustment_rejected(self, tmp_path):
        path = tmp_path / "out.bad"
        path.write_text("0 1\n")
        with pytest.raises(GraphFormatError, match="negative"):
            read_konect(path)


class TestMatrixMarket:
    def test_roundtrip(self, sample_graph, tmp_path):
        path = tmp_path / "graph.mtx"
        write_matrix_market(sample_graph, path)
        loaded = read_matrix_market(path)
        assert loaded == sample_graph

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("1 1 1\n1 1\n")
        with pytest.raises(GraphFormatError, match="MatrixMarket"):
            read_matrix_market(path)

    def test_entry_count_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("%%MatrixMarket matrix coordinate pattern general\n2 2 3\n1 1\n")
        with pytest.raises(GraphFormatError, match="entries"):
            read_matrix_market(path)

    def test_non_coordinate_rejected(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("%%MatrixMarket matrix array real general\n2 2\n1.0\n")
        with pytest.raises(GraphFormatError, match="coordinate"):
            read_matrix_market(path)


class TestLoadDispatch:
    def test_dispatch_by_extension(self, sample_graph, tmp_path):
        mtx = tmp_path / "graph.mtx"
        write_matrix_market(sample_graph, mtx)
        assert load_graph(mtx) == sample_graph

        tsv = tmp_path / "graph.tsv"
        write_edge_list(sample_graph, tsv)
        assert load_graph(tsv) == sample_graph

    def test_dispatch_konect(self, tmp_path):
        path = tmp_path / "out.something"
        path.write_text("% header\n1 1\n")
        graph = load_graph(path)
        assert graph.n_edges == 1

    def test_iter_graph_files(self, sample_graph, tmp_path):
        write_edge_list(sample_graph, tmp_path / "a.tsv")
        write_matrix_market(sample_graph, tmp_path / "b.mtx")
        (tmp_path / "ignored.json").write_text("{}")
        files = [path.name for path in iter_graph_files(tmp_path)]
        assert files == ["a.tsv", "b.mtx"]
