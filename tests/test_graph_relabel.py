"""Unit tests for degree-priority relabelling."""

import numpy as np

from repro.graph.builders import complete_bipartite, from_edge_list, star
from repro.graph.relabel import degree_priority, degree_sorted_vertices


class TestDegreePriority:
    def test_ranks_are_a_permutation(self, tiny_graph):
        priority = degree_priority(tiny_graph)
        all_ranks = np.concatenate([priority.u_rank, priority.v_rank])
        assert sorted(all_ranks.tolist()) == list(range(tiny_graph.n_vertices))
        assert priority.n_vertices == tiny_graph.n_vertices

    def test_higher_degree_gets_lower_rank(self, tiny_graph):
        priority = degree_priority(tiny_graph)
        degrees_u = tiny_graph.degrees_u()
        degrees_v = tiny_graph.degrees_v()
        # Compare every U vertex against every V vertex: strictly larger
        # degree must imply strictly smaller (better) rank.
        for u in range(tiny_graph.n_u):
            for v in range(tiny_graph.n_v):
                if degrees_u[u] > degrees_v[v]:
                    assert priority.u_rank[u] < priority.v_rank[v]
                elif degrees_u[u] < degrees_v[v]:
                    assert priority.u_rank[u] > priority.v_rank[v]

    def test_ties_broken_u_before_v_then_id(self):
        graph = from_edge_list([(0, 0), (1, 1)], n_u=2, n_v=2)
        priority = degree_priority(graph)
        # All degrees equal 1: order must be u0, u1, v0, v1.
        assert priority.u_rank.tolist() == [0, 1]
        assert priority.v_rank.tolist() == [2, 3]

    def test_rank_lookup_by_side(self, tiny_graph):
        priority = degree_priority(tiny_graph)
        assert priority.rank(0, "U") == int(priority.u_rank[0])
        assert priority.rank(0, "V") == int(priority.v_rank[0])

    def test_order_arrays_consistent(self, tiny_graph):
        priority = degree_priority(tiny_graph)
        for rank in range(priority.n_vertices):
            side = "U" if priority.order_sides[rank] == 0 else "V"
            vertex = int(priority.order_ids[rank])
            assert priority.rank(vertex, side) == rank

    def test_star_center_ranked_first(self):
        graph = star(5, center_side="V")
        priority = degree_priority(graph)
        assert priority.v_rank[0] == 0

    def test_deterministic(self, blocks_graph):
        first = degree_priority(blocks_graph)
        second = degree_priority(blocks_graph)
        assert np.array_equal(first.u_rank, second.u_rank)
        assert np.array_equal(first.v_rank, second.v_rank)


class TestDegreeSortedVertices:
    def test_descending_order(self, tiny_graph):
        order = degree_sorted_vertices(tiny_graph, "U")
        degrees = tiny_graph.degrees_u()[order]
        assert np.all(np.diff(degrees) <= 0)

    def test_ascending_order(self, tiny_graph):
        order = degree_sorted_vertices(tiny_graph, "V", descending=False)
        degrees = tiny_graph.degrees_v()[order]
        assert np.all(np.diff(degrees) >= 0)

    def test_complete_graph_all_equal(self):
        graph = complete_bipartite(4, 4)
        order = degree_sorted_vertices(graph, "U")
        assert sorted(order.tolist()) == [0, 1, 2, 3]
