"""Unit tests for graph statistics (Table 2 quantities)."""

import pytest

from repro.graph.builders import complete_bipartite, empty_graph
from repro.graph.statistics import degree_summary, graph_statistics


class TestDegreeSummary:
    def test_complete_graph(self):
        graph = complete_bipartite(4, 6)
        summary = degree_summary(graph, "U")
        assert summary.n_vertices == 4
        assert summary.min_degree == summary.max_degree == 6
        assert summary.mean_degree == pytest.approx(6.0)
        assert summary.n_isolated == 0
        assert summary.gini_coefficient == pytest.approx(0.0, abs=1e-9)

    def test_empty_side(self):
        summary = degree_summary(empty_graph(0, 3), "U")
        assert summary.n_vertices == 0
        assert summary.mean_degree == 0.0

    def test_isolated_vertices_counted(self, tiny_graph):
        summary = degree_summary(tiny_graph, "U")
        assert summary.n_isolated == 0
        assert summary.max_degree == 5

    def test_skewed_distribution_has_positive_gini(self, medium_random_graph):
        summary = degree_summary(medium_random_graph, "V")
        assert 0.0 < summary.gini_coefficient < 1.0
        assert summary.p99_degree >= summary.p90_degree >= summary.median_degree

    def test_as_dict_round_trips(self, tiny_graph):
        summary = degree_summary(tiny_graph, "V")
        data = summary.as_dict()
        assert data["n_vertices"] == tiny_graph.n_v
        assert set(data) >= {"min_degree", "max_degree", "mean_degree", "gini_coefficient"}


class TestGraphStatistics:
    def test_complete_graph_statistics(self):
        graph = complete_bipartite(3, 4)
        stats = graph_statistics(graph, name="K34")
        assert stats.name == "K34"
        assert stats.n_edges == 12
        assert stats.avg_degree_u == pytest.approx(4.0)
        assert stats.avg_degree_v == pytest.approx(3.0)
        assert stats.density == pytest.approx(1.0)
        assert stats.wedges_with_endpoints_in_u == 4 * 3  # |V| * C(3, 2)
        assert stats.wedges_with_endpoints_in_v == 3 * 6
        assert stats.peel_work_u == 12 * 3
        assert stats.counting_wedge_bound == 12 * 3

    def test_empty_graph_statistics(self):
        stats = graph_statistics(empty_graph(0, 0))
        assert stats.n_edges == 0
        assert stats.density == 0.0
        assert stats.avg_degree_u == 0.0

    def test_name_defaults_to_graph_name(self, blocks_graph):
        assert graph_statistics(blocks_graph).name == blocks_graph.name

    def test_consistency_with_graph_methods(self, blocks_graph):
        stats = graph_statistics(blocks_graph)
        assert stats.peel_work_u == blocks_graph.total_wedge_work("U")
        assert stats.peel_work_v == blocks_graph.total_wedge_work("V")
        assert stats.wedges_with_endpoints_in_u == blocks_graph.wedge_endpoint_count("U")
        assert stats.counting_wedge_bound == blocks_graph.counting_wedge_bound()

    def test_as_dict(self, blocks_graph):
        data = graph_statistics(blocks_graph).as_dict()
        assert data["n_u"] == blocks_graph.n_u
        assert data["n_edges"] == blocks_graph.n_edges
