"""Integration tests: all algorithms must agree on a spread of graphs.

These tests mirror the paper's correctness claim (Theorem 2): RECEIPT, with
any combination of optimizations, computes exactly the tip numbers of
sequential bottom-up peeling, on both vertex sides, for any graph.
"""

import numpy as np
import pytest

from repro.analysis.verification import check_k_tip_property
from repro.core.receipt import receipt_decomposition
from repro.datasets.generators import (
    affiliation_graph,
    planted_blocks,
    power_law_bipartite,
    random_bipartite,
)
from repro.datasets.registry import load_dataset
from repro.peeling.bup import bup_decomposition
from repro.peeling.parbutterfly import parbutterfly_decomposition


def _graph_collection():
    return {
        "sparse-random": random_bipartite(40, 35, 90, seed=10),
        "dense-random": random_bipartite(15, 15, 140, seed=11),
        "power-law": power_law_bipartite(120, 60, 600, exponent_v=1.9, seed=12),
        "planted": planted_blocks(50, 40, [(9, 7), (7, 5)], background_edges=70, seed=13),
        "affiliation": affiliation_graph(70, 30, 10, seed=14),
    }


@pytest.mark.parametrize("name,graph", list(_graph_collection().items()))
@pytest.mark.parametrize("side", ["U", "V"])
def test_all_algorithms_agree(name, graph, side):
    reference = bup_decomposition(graph, side)
    parb = parbutterfly_decomposition(graph, side)
    assert np.array_equal(reference.tip_numbers, parb.tip_numbers), f"ParB {name}/{side}"
    for variant in ("receipt", "receipt-", "receipt--"):
        receipt = receipt_decomposition(
            graph, side, config=None, n_partitions=6,
            enable_huc=variant != "receipt--",
            enable_dgm=variant == "receipt",
        )
        assert np.array_equal(reference.tip_numbers, receipt.tip_numbers), f"{variant} {name}/{side}"


@pytest.mark.parametrize("key", ["it", "lj"])
def test_scaled_paper_datasets_agree(key):
    graph = load_dataset(key, scale=0.08)
    reference = bup_decomposition(graph, "U")
    receipt = receipt_decomposition(graph, "U", n_partitions=8)
    assert np.array_equal(reference.tip_numbers, receipt.tip_numbers)


def test_receipt_satisfies_k_tip_property(community_graph):
    result = receipt_decomposition(community_graph, "U", n_partitions=5)
    report = check_k_tip_property(community_graph, result)
    assert report.passed, report.failures


def test_counting_is_consistent_across_algorithms(medium_random_graph):
    from repro.butterfly.counting import count_per_vertex

    by_algorithm = {
        name: count_per_vertex(medium_random_graph, algorithm=name)
        for name in ("vertex-priority", "parallel", "wedge")
    }
    reference = by_algorithm["vertex-priority"]
    for name, counts in by_algorithm.items():
        assert np.array_equal(counts.u_counts, reference.u_counts), name
        assert np.array_equal(counts.v_counts, reference.v_counts), name


def test_workload_metrics_shape(medium_random_graph):
    """The relationships the paper's evaluation relies on hold on random data."""
    reference = bup_decomposition(medium_random_graph, "U")
    parb = parbutterfly_decomposition(medium_random_graph, "U")
    receipt = receipt_decomposition(medium_random_graph, "U", n_partitions=8)

    # RECEIPT uses dramatically fewer synchronization rounds than ParB.
    assert receipt.counters.synchronization_rounds < parb.counters.synchronization_rounds
    # Both compute identical tip numbers.
    assert np.array_equal(receipt.tip_numbers, reference.tip_numbers)
    # The two-step approach never traverses more than twice the BUP wedges
    # plus the counting overhead (Theorem 3's work-efficiency, loosely).
    assert receipt.counters.wedges_traversed <= 2 * reference.counters.wedges_traversed
