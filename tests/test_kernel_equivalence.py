"""Equivalence of the batched peel kernel with the per-vertex reference.

The batched kernel (:func:`repro.peeling.peel_batch` with
``kernel="batched"``) must reproduce the sequential reference
(:mod:`repro.peeling.reference`) bit-for-bit: identical final supports,
identical ``wedges_traversed`` (including the stale entries governed by DGM
compaction timing) and identical ``support_updates``.  This suite checks the
contract on seeded random graphs, via hypothesis-generated edge lists, and
end-to-end through the decomposition algorithms' ``peel_kernel`` plumbing.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.butterfly.counting import count_per_vertex_priority
from repro.core.receipt import receipt_decomposition
from repro.datasets.generators import power_law_bipartite, random_bipartite
from repro.graph.bipartite import BipartiteGraph
from repro.graph.dynamic import PeelableAdjacency
from repro.kernels.csr import compact_csr, gather_rows, int_bincount, segment_sums
from repro.parallel.threadpool import ExecutionContext
from repro.peeling.bup import bup_decomposition
from repro.peeling.parbutterfly import parbutterfly_decomposition
from repro.peeling.update import peel_batch, peel_vertex


def _assert_batches_equivalent(graph, *, enable_dgm, compaction_interval, seed,
                               batched_context=None):
    """Peel the whole U side in random batches with both kernels and compare."""
    rng = np.random.default_rng(seed)
    counts = count_per_vertex_priority(graph)
    supports = {"reference": counts.u_counts.copy(), "batched": counts.u_counts.copy()}
    adjacency = {
        name: PeelableAdjacency(
            graph, "U", enable_dgm=enable_dgm, compaction_interval=compaction_interval
        )
        for name in supports
    }

    order = rng.permutation(graph.n_u)
    position = 0
    while position < order.shape[0]:
        batch = order[position: position + int(rng.integers(1, 9))]
        position += batch.shape[0]
        threshold = int(rng.integers(0, 5))
        reference = peel_batch(
            adjacency["reference"], supports["reference"], batch, threshold,
            kernel="reference",
        )
        batched = peel_batch(
            adjacency["batched"], supports["batched"], batch, threshold,
            kernel="batched", context=batched_context,
        )
        assert batched.wedges_traversed == reference.wedges_traversed
        assert batched.support_updates == reference.support_updates
        assert sorted(batched.updated_vertices.tolist()) == sorted(
            reference.updated_vertices.tolist()
        )
        for update in (reference, batched):
            name = "reference" if update is reference else "batched"
            assert np.array_equal(
                supports[name][update.updated_vertices], update.new_supports
            )
        assert np.array_equal(supports["reference"], supports["batched"])
        assert (
            adjacency["batched"].compactions_performed
            == adjacency["reference"].compactions_performed
        )
        assert (
            adjacency["batched"].entries_removed
            == adjacency["reference"].entries_removed
        )


class TestBatchKernelEquivalence:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_graphs_no_dgm(self, seed):
        graph = random_bipartite(40, 25, 200, seed=seed)
        _assert_batches_equivalent(
            graph, enable_dgm=False, compaction_interval=None, seed=seed
        )

    @pytest.mark.parametrize("seed", range(5))
    def test_random_graphs_with_dgm(self, seed):
        # A tiny compaction interval forces many mid-batch compactions, the
        # hardest case for keeping wedge counters identical.
        graph = power_law_bipartite(60, 40, 300, seed=seed)
        _assert_batches_equivalent(
            graph, enable_dgm=True, compaction_interval=23, seed=seed
        )

    def test_power_law_with_default_interval(self):
        graph = power_law_bipartite(120, 60, 700, seed=11)
        _assert_batches_equivalent(
            graph, enable_dgm=True, compaction_interval=None, seed=11
        )

    def test_map_chunks_path_matches(self):
        # The multi-threaded gather path (private per-slice buffers merged by
        # the kernel) must not change any result or counter.
        graph = power_law_bipartite(80, 50, 450, seed=3)
        with ExecutionContext(4, use_real_threads=True) as context:
            _assert_batches_equivalent(
                graph, enable_dgm=True, compaction_interval=31, seed=3,
                batched_context=context,
            )

    def test_single_vertex_kernel_matches(self):
        graph = random_bipartite(30, 20, 140, seed=7)
        counts = count_per_vertex_priority(graph)
        supports = {name: counts.u_counts.copy() for name in ("reference", "batched")}
        adjacency = {name: PeelableAdjacency(graph, "U", enable_dgm=False)
                     for name in supports}
        for vertex in np.random.default_rng(7).permutation(graph.n_u):
            for name in supports:
                adjacency[name].mark_peeled(int(vertex))
            reference = peel_vertex(
                adjacency["reference"], supports["reference"], int(vertex), 1,
                kernel="reference",
            )
            batched = peel_vertex(
                adjacency["batched"], supports["batched"], int(vertex), 1,
                kernel="batched",
            )
            assert batched.wedges_traversed == reference.wedges_traversed
            assert batched.support_updates == reference.support_updates
            assert np.array_equal(supports["reference"], supports["batched"])

    @settings(max_examples=40, deadline=None)
    @given(
        edges=st.lists(
            st.tuples(st.integers(0, 14), st.integers(0, 9)),
            min_size=1, max_size=80, unique=True,
        ),
        batch_seed=st.integers(0, 2**16),
        interval=st.one_of(st.none(), st.integers(1, 50)),
    )
    def test_hypothesis_edge_lists(self, edges, batch_seed, interval):
        graph = BipartiteGraph(15, 10, edges)
        _assert_batches_equivalent(
            graph,
            enable_dgm=interval is not None,
            compaction_interval=interval,
            seed=batch_seed,
        )


class TestDecompositionEquivalence:
    def test_receipt_kernels_agree(self, blocks_graph):
        results = {
            kernel: receipt_decomposition(
                blocks_graph, "U", n_partitions=5, peel_kernel=kernel
            )
            for kernel in ("batched", "reference")
        }
        assert np.array_equal(
            results["batched"].tip_numbers, results["reference"].tip_numbers
        )
        for counter in ("wedges_traversed", "support_updates", "peeling_wedges",
                        "synchronization_rounds", "vertices_peeled"):
            assert getattr(results["batched"].counters, counter) == getattr(
                results["reference"].counters, counter
            ), counter

    def test_bup_kernels_agree(self, community_graph):
        results = {
            kernel: bup_decomposition(community_graph, "U", peel_kernel=kernel)
            for kernel in ("batched", "reference")
        }
        assert np.array_equal(
            results["batched"].tip_numbers, results["reference"].tip_numbers
        )
        assert (
            results["batched"].counters.wedges_traversed
            == results["reference"].counters.wedges_traversed
        )

    def test_parb_kernels_agree(self, blocks_graph):
        results = {
            kernel: parbutterfly_decomposition(blocks_graph, "U", peel_kernel=kernel)
            for kernel in ("batched", "reference")
        }
        assert np.array_equal(
            results["batched"].tip_numbers, results["reference"].tip_numbers
        )
        assert (
            results["batched"].counters.support_updates
            == results["reference"].counters.support_updates
        )

    def test_unknown_kernel_rejected(self, blocks_graph):
        adjacency = PeelableAdjacency(blocks_graph, "U")
        supports = np.zeros(blocks_graph.n_u, dtype=np.int64)
        with pytest.raises(ValueError):
            peel_batch(adjacency, supports, np.array([0]), 0, kernel="nope")


class TestKernelPrimitives:
    def test_gather_rows_matches_manual_slices(self):
        offsets = np.array([0, 3, 3, 7, 9], dtype=np.int64)
        values = np.arange(100, 109, dtype=np.int64)
        rows = np.array([2, 0, 2, 1, 3], dtype=np.int64)
        gathered, lengths = gather_rows(offsets, values, rows)
        expected = np.concatenate([values[offsets[r]: offsets[r + 1]] for r in rows])
        assert np.array_equal(gathered, expected)
        assert lengths.tolist() == [4, 3, 4, 0, 2]

    def test_gather_rows_empty(self):
        offsets = np.zeros(4, dtype=np.int64)
        values = np.zeros(0, dtype=np.int64)
        gathered, lengths = gather_rows(offsets, values, np.array([0, 2]))
        assert gathered.size == 0
        assert lengths.tolist() == [0, 0]

    def test_compact_csr(self):
        offsets = np.array([0, 2, 2, 5], dtype=np.int64)
        values = np.array([4, 5, 6, 7, 8], dtype=np.int64)
        keep = np.array([True, False, False, True, True])
        new_offsets, new_values = compact_csr(offsets, values, keep)
        assert new_offsets.tolist() == [0, 1, 1, 3]
        assert new_values.tolist() == [4, 7, 8]

    def test_segment_sums_with_empty_segments(self):
        values = np.array([1, 2, 3, 4], dtype=np.int64)
        lengths = np.array([2, 0, 1, 1], dtype=np.int64)
        assert segment_sums(values, lengths).tolist() == [3, 0, 3, 4]

    def test_int_bincount_is_precise_beyond_2_53(self):
        # One weight above 2**53: float64 accumulation would round it.
        indices = np.array([0, 0, 1], dtype=np.int64)
        weights = np.array([2**53 + 1, 1, 5], dtype=np.int64)
        out = int_bincount(indices, weights, 3)
        assert out.tolist() == [2**53 + 2, 5, 0]
        lossy = np.bincount(indices, weights=weights.astype(np.float64), minlength=3)
        assert int(lossy[0]) != 2**53 + 2  # the hazard the kernel avoids
