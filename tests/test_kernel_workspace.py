"""Equivalence and regression tests for the memory-bounded wedge pipeline.

The workspace layer (scratch arena + int32 narrowing + wedge-budgeted
chunking) is pure memory policy: every configuration must produce
bit-identical tip numbers and work counters.  This suite pins that down
with hypothesis-generated graphs across both peel kernels and the serial /
process execution backends, plus targeted regression tests for the
``key_counts`` ownership semantics near the int32 boundary.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.butterfly.counting import count_per_vertex_priority
from repro.core.receipt import receipt_decomposition
from repro.datasets.generators import random_bipartite
from repro.graph.dynamic import PeelableAdjacency
from repro.kernels.peel import key_counts
from repro.kernels.workspace import (
    DEFAULT_WEDGE_BUDGET,
    WedgeWorkspace,
    budget_spans,
    default_wedge_budget,
    resolve_wedge_budget,
)
from repro.peeling.bup import bup_decomposition
from repro.peeling.update import peel_batch

INT32_MAX = np.iinfo(np.int32).max


def seeded_graph(seed: int, n_u: int = 40, n_v: int = 24, density: float = 0.18):
    return random_bipartite(n_u, n_v, int(n_u * n_v * density), seed=seed)


def workspace_grid():
    """The policy corners: legacy int64, default, unbudgeted, tiny budget."""
    return {
        "legacy": WedgeWorkspace.legacy(),
        "default": WedgeWorkspace(),
        "unbudgeted": WedgeWorkspace(wedge_budget=None),
        "budget-1": WedgeWorkspace(wedge_budget=1),
        "int64-budgeted": WedgeWorkspace(wedge_budget=7, narrow_ids=False),
    }


class TestWorkspace:
    def test_take_reuses_buffers(self):
        workspace = WedgeWorkspace()
        first = workspace.take("x", 100, np.int64)
        second = workspace.take("x", 50, np.int32)
        assert first.base is second.base
        assert workspace.peak_scratch_bytes >= 800

    def test_take_grows_geometrically(self):
        workspace = WedgeWorkspace()
        workspace.take("x", 100, np.int8)
        peak_small = workspace.peak_scratch_bytes
        workspace.take("x", 101, np.int8)
        assert workspace.peak_scratch_bytes >= 2 * peak_small - 64

    def test_legacy_returns_fresh_arrays(self):
        workspace = WedgeWorkspace.legacy()
        first = workspace.take("x", 10, np.int64)
        second = workspace.take("x", 10, np.int64)
        assert first.base is None and second.base is None
        assert first is not second
        assert workspace.narrow_ids is False and workspace.wedge_budget is None

    def test_ids_dtype_narrows_only_when_bound_fits(self):
        workspace = WedgeWorkspace()
        assert workspace.ids_dtype(1000) == np.int32
        assert workspace.ids_dtype(INT32_MAX) == np.int32
        assert workspace.ids_dtype(INT32_MAX + 1) == np.int64
        wide = WedgeWorkspace(narrow_ids=False)
        assert wide.ids_dtype(1000) == np.int64

    def test_iota_is_stable_and_cached(self):
        workspace = WedgeWorkspace()
        first = workspace.iota(10)
        second = workspace.iota(5)
        assert np.array_equal(first, np.arange(10))
        assert np.array_equal(second, np.arange(5))
        assert second.base is first.base

    def test_resolve_wedge_budget(self):
        assert resolve_wedge_budget(None) == DEFAULT_WEDGE_BUDGET
        assert resolve_wedge_budget(0) is None
        assert resolve_wedge_budget(-5) is None
        assert resolve_wedge_budget(123) == 123

    def test_wedge_budget_env_read_per_call(self, monkeypatch):
        # Regression: the env override used to be frozen at import time, so
        # a long-lived process (the serving front end) could never be
        # retuned.  Every resolution path must see a mid-process change.
        monkeypatch.delenv("REPRO_WEDGE_BUDGET", raising=False)
        assert default_wedge_budget() == DEFAULT_WEDGE_BUDGET

        monkeypatch.setenv("REPRO_WEDGE_BUDGET", "4096")
        assert default_wedge_budget() == 4096
        assert resolve_wedge_budget(None) == 4096
        assert WedgeWorkspace().wedge_budget == 4096

        monkeypatch.setenv("REPRO_WEDGE_BUDGET", "0")  # disables chunking
        assert default_wedge_budget() is None
        assert WedgeWorkspace().wedge_budget is None

        monkeypatch.delenv("REPRO_WEDGE_BUDGET")  # back to the library default
        assert resolve_wedge_budget(None) == DEFAULT_WEDGE_BUDGET
        assert WedgeWorkspace().wedge_budget == DEFAULT_WEDGE_BUDGET

    def test_explicit_budget_beats_the_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WEDGE_BUDGET", "4096")
        assert WedgeWorkspace(wedge_budget=7).wedge_budget == 7
        assert WedgeWorkspace(wedge_budget=None).wedge_budget is None
        assert resolve_wedge_budget(123) == 123

    @given(st.lists(st.integers(min_value=0, max_value=50), max_size=40),
           st.one_of(st.none(), st.integers(min_value=1, max_value=120)))
    @settings(deadline=None)
    def test_budget_spans_cover_exactly_within_budget(self, weights, budget):
        weights = np.asarray(weights, dtype=np.int64)
        spans = list(budget_spans(weights, budget))
        # Spans tile [0, n) exactly.
        expected_start = 0
        for lo, hi in spans:
            assert lo == expected_start and hi > lo
            expected_start = hi
        assert expected_start == weights.shape[0]
        if budget is not None:
            for lo, hi in spans:
                if hi - lo > 1:
                    assert int(weights[lo:hi].sum()) <= budget


class TestKeyCountsOwnership:
    def test_unowned_small_bound_preserves_caller_array(self):
        keys = np.array([5, 3, 5, 1], dtype=np.int64)
        snapshot = keys.copy()
        unique, counts = key_counts(keys, 10, owned=False)
        assert np.array_equal(keys, snapshot)
        assert np.array_equal(unique, [1, 3, 5])
        assert np.array_equal(counts, [1, 1, 2])

    def test_unowned_beyond_int32_preserves_caller_array(self):
        # Regression: a key bound beyond int32 used to skip the narrowing
        # copy and sort the caller's array in place.
        big = np.int64(INT32_MAX) + 10
        keys = np.array([big, 3, big, 7], dtype=np.int64)
        snapshot = keys.copy()
        unique, counts = key_counts(keys, int(big) + 1, owned=False)
        assert np.array_equal(keys, snapshot)
        assert np.array_equal(unique, [3, 7, big])
        assert np.array_equal(counts, [1, 1, 2])

    def test_unowned_int32_input_preserves_caller_array(self):
        keys = np.array([9, 2, 9], dtype=np.int32)
        snapshot = keys.copy()
        key_counts(keys, 10, owned=False)
        assert np.array_equal(keys, snapshot)

    def test_owned_int32_sorts_in_place(self):
        keys = np.array([9, 2, 9], dtype=np.int32)
        unique, counts = key_counts(keys, 10, owned=True)
        assert np.array_equal(keys, [2, 9, 9])  # sorted in place: no copy made
        assert unique.dtype == np.int64
        assert np.array_equal(unique, [2, 9])
        assert np.array_equal(counts, [1, 2])

    def test_near_int32_boundary_keys_are_exact(self):
        # Synthetic keys straddling the narrowing decision on both sides.
        for bound, dtype in ((INT32_MAX, np.int32), (INT32_MAX + 2, np.int64)):
            keys = np.array([bound - 1, 0, bound - 1, bound - 2], dtype=np.int64)
            unique, counts = key_counts(keys, bound, owned=False)
            assert np.array_equal(unique, [0, bound - 2, bound - 1])
            assert np.array_equal(counts, [1, 1, 2])
            assert unique.dtype == np.int64

    def test_empty_keys(self):
        unique, counts = key_counts(np.zeros(0, dtype=np.int64), 10)
        assert unique.size == 0 and counts.size == 0


def _peel_once(graph, workspace, *, enable_dgm):
    counts = count_per_vertex_priority(graph, workspace=workspace)
    supports = counts.u_counts.copy()
    adjacency = PeelableAdjacency(graph, "U", enable_dgm=enable_dgm,
                                  narrow_ids=workspace.narrow_ids)
    order = np.argsort(supports, kind="stable")
    batch = order[: max(1, order.shape[0] // 3)]
    update = peel_batch(adjacency, supports, batch, int(supports[batch].max()),
                        workspace=workspace)
    return counts, supports, update


class TestPipelineEquivalence:
    @given(st.integers(min_value=0, max_value=10**6), st.booleans())
    @settings(deadline=None, max_examples=25,
              suppress_health_check=[HealthCheck.too_slow])
    def test_peel_batch_identical_across_policies(self, seed, enable_dgm):
        graph = seeded_graph(seed)
        baseline = None
        for name, workspace in workspace_grid().items():
            counts, supports, update = _peel_once(graph, workspace,
                                                  enable_dgm=enable_dgm)
            observed = (
                counts.u_counts.tolist(), counts.v_counts.tolist(),
                counts.wedges_traversed,
                supports.tolist(),
                update.updated_vertices.tolist(), update.new_supports.tolist(),
                update.wedges_traversed, update.support_updates,
            )
            if baseline is None:
                baseline = (name, observed)
            else:
                assert observed == baseline[1], (
                    f"policy {name!r} disagrees with {baseline[0]!r}"
                )

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(deadline=None, max_examples=10,
              suppress_health_check=[HealthCheck.too_slow])
    def test_bup_identical_across_policies_and_kernels(self, seed):
        graph = seeded_graph(seed, n_u=26, n_v=16)
        results = []
        for workspace in (WedgeWorkspace.legacy(), WedgeWorkspace(wedge_budget=3)):
            for kernel in ("batched", "reference"):
                result = bup_decomposition(graph, "U", peel_kernel=kernel,
                                           workspace=workspace)
                results.append(result)
        for other in results[1:]:
            assert np.array_equal(results[0].tip_numbers, other.tip_numbers)
            assert (results[0].counters.wedges_traversed
                    == other.counters.wedges_traversed)
            assert (results[0].counters.support_updates
                    == other.counters.support_updates)

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(deadline=None, max_examples=6,
              suppress_health_check=[HealthCheck.too_slow])
    def test_receipt_identical_across_budgets(self, seed):
        graph = seeded_graph(seed, n_u=30, n_v=20)
        runs = [
            receipt_decomposition(graph, "U", n_partitions=4,
                                  counting_algorithm="vertex-priority",
                                  wedge_budget=budget)
            for budget in (None, 0, 1)
        ]
        for other in runs[1:]:
            assert np.array_equal(runs[0].tip_numbers, other.tip_numbers)
            assert (runs[0].counters.wedges_traversed
                    == other.counters.wedges_traversed)
            assert (runs[0].counters.support_updates
                    == other.counters.support_updates)

    @pytest.mark.parametrize("backend", ["serial", "process"])
    def test_receipt_budgeted_across_backends(self, backend):
        graph = seeded_graph(1234, n_u=36, n_v=22)
        reference = receipt_decomposition(
            graph, "U", n_partitions=4, counting_algorithm="vertex-priority"
        )
        run = receipt_decomposition(
            graph, "U", n_partitions=4, counting_algorithm="vertex-priority",
            wedge_budget=5, backend=backend, n_threads=2,
        )
        assert np.array_equal(reference.tip_numbers, run.tip_numbers)
        assert (reference.counters.wedges_traversed
                == run.counters.wedges_traversed)
        assert (reference.counters.support_updates
                == run.counters.support_updates)


class TestPeakAccounting:
    def test_budget_caps_peak_scratch(self):
        graph = seeded_graph(77, n_u=120, n_v=60, density=0.25)
        peaks = {}
        for name, budget in (("unbudgeted", 0), ("budgeted", 64)):
            workspace = WedgeWorkspace(wedge_budget=resolve_wedge_budget(budget))
            counts = count_per_vertex_priority(graph, workspace=workspace)
            supports = counts.u_counts.copy()
            adjacency = PeelableAdjacency(graph, "U", enable_dgm=False)
            batch = np.arange(graph.n_u // 2, dtype=np.int64)
            peel_batch(adjacency, supports, batch, 0, workspace=workspace)
            peaks[name] = workspace.peak_scratch_bytes
        assert peaks["budgeted"] < peaks["unbudgeted"]

    def test_counters_report_workspace_peak(self):
        graph = seeded_graph(5, n_u=30, n_v=18)
        result = bup_decomposition(graph, "U")
        assert result.counters.peak_scratch_bytes > 0
        assert "peak_scratch_bytes" in result.counters.as_dict()

    def test_receipt_counters_report_peak(self):
        graph = seeded_graph(6, n_u=30, n_v=18)
        result = receipt_decomposition(graph, "U", n_partitions=3,
                                       counting_algorithm="vertex-priority")
        assert result.counters.peak_scratch_bytes > 0
