"""Bench-history sentinel: record distillation, rolling baselines, the gate."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs.history import (
    BASELINE_WINDOW,
    METRIC_SPECS,
    MetricSpec,
    append_history,
    baseline_for,
    check_regressions,
    extract_value,
    format_report,
    load_history,
    record_from_bench,
)


def obs_payload(noop_pct=1.0, gap_pct=2.0, mode="quick"):
    """A minimal BENCH_obs.json-shaped payload carrying the gated metrics."""
    return {
        "benchmark": "observability",
        "mode": mode,
        "tracer_overhead": {"noop_overhead_pct": noop_pct},
        "trace_fidelity": {"phase_gap_pct": gap_pct},
    }


def obs_record(noop_pct=1.0, gap_pct=2.0, mode="quick", when=0.0):
    return record_from_bench(obs_payload(noop_pct, gap_pct, mode),
                             source="BENCH_obs.json", recorded_unix=when)


class TestExtractValue:
    def test_dotted_path(self):
        payload = {"a": {"b": {"c": 3.5}}}
        assert extract_value(payload, "a.b.c") == 3.5

    def test_missing_path_is_none(self):
        assert extract_value({"a": {}}, "a.b") is None
        assert extract_value({}, "a") is None

    def test_non_numeric_leaves_rejected(self):
        assert extract_value({"a": "fast"}, "a") is None
        assert extract_value({"a": True}, "a") is None
        assert extract_value({"a": [1]}, "a") is None


class TestMetricSpec:
    def test_direction_validated(self):
        with pytest.raises(ValueError):
            MetricSpec("x", "sideways", 0.1)

    def test_higher_is_better_regression(self):
        spec = MetricSpec("speedup", "higher", 0.20, abs_floor=0.5)
        assert spec.regressed(value=5.0, baseline=10.0)
        assert not spec.regressed(value=9.0, baseline=10.0)  # inside band
        # Outside the band but under the absolute floor: not a regression.
        assert not spec.regressed(value=0.7, baseline=1.0)

    def test_lower_is_better_regression(self):
        spec = MetricSpec("overhead", "lower", 0.50, abs_floor=1.0)
        assert spec.regressed(value=10.0, baseline=2.0)
        assert not spec.regressed(value=2.5, baseline=2.0)  # inside band
        assert not spec.regressed(value=0.10, baseline=0.04)  # under floor

    def test_every_benchmark_spec_is_well_formed(self):
        for benchmark, specs in METRIC_SPECS.items():
            assert specs, benchmark
            for spec in specs:
                assert spec.direction in ("higher", "lower")
                assert spec.tolerance >= 0


class TestRecords:
    def test_record_from_bench_distils_gated_metrics(self):
        record = obs_record(noop_pct=0.5, gap_pct=1.5, when=123.0)
        assert record == {
            "recorded_unix": 123.0,
            "benchmark": "observability",
            "mode": "quick",
            "source": "BENCH_obs.json",
            "metrics": {
                "tracer_overhead.noop_overhead_pct": 0.5,
                "trace_fidelity.phase_gap_pct": 1.5,
            },
        }

    def test_unknown_benchmark_yields_none(self):
        payload = {"benchmark": "mystery", "speed": 1.0}
        assert record_from_bench(payload, source="x", recorded_unix=0.0) is None

    def test_known_benchmark_without_metrics_yields_none(self):
        payload = {"benchmark": "observability", "notes": "metrics absent"}
        assert record_from_bench(payload, source="x", recorded_unix=0.0) is None

    def test_committed_bench_snapshots_produce_records(self, repo_root=None):
        from pathlib import Path

        root = Path(__file__).resolve().parent.parent
        produced = 0
        for path in sorted(root.glob("BENCH_*.json")):
            payload = json.loads(path.read_text())
            record = record_from_bench(payload, source=path.name,
                                       recorded_unix=0.0)
            if record is not None:
                produced += 1
                assert record["metrics"]
        # The committed snapshots must keep feeding the sentinel; if a
        # bench renames its headline keys this catches the silent decay.
        assert produced >= 4


class TestHistoryFile:
    def test_append_and_load_round_trip(self, tmp_path):
        path = tmp_path / "history.jsonl"
        records = [obs_record(when=1.0), obs_record(when=2.0)]
        assert append_history(path, records) == 2
        assert append_history(path, []) == 0
        assert load_history(path) == records

    def test_append_is_append_only(self, tmp_path):
        path = tmp_path / "history.jsonl"
        append_history(path, [obs_record(when=1.0)])
        append_history(path, [obs_record(when=2.0)])
        assert len(load_history(path)) == 2

    def test_malformed_lines_skipped(self, tmp_path):
        path = tmp_path / "history.jsonl"
        append_history(path, [obs_record(when=1.0)])
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("{truncated by a killed CI job\n")
            handle.write("[1, 2, 3]\n")
        append_history(path, [obs_record(when=2.0)])
        assert len(load_history(path)) == 2

    def test_missing_file_is_empty_history(self, tmp_path):
        assert load_history(tmp_path / "absent.jsonl") == []


class TestBaselines:
    def test_median_of_last_window(self):
        history = [obs_record(noop_pct=pct, when=float(i))
                   for i, pct in enumerate([9.0, 1.0, 2.0, 3.0, 4.0, 5.0])]
        # Window 5 drops the 9.0 outlier entirely; median of [1..5] = 3.
        assert baseline_for(history, "observability", "quick",
                            "tracer_overhead.noop_overhead_pct",
                            window=5) == 3.0

    def test_modes_never_share_a_baseline(self):
        history = [obs_record(noop_pct=1.0, mode="full"),
                   obs_record(noop_pct=9.0, mode="quick")]
        assert baseline_for(history, "observability", "full",
                            "tracer_overhead.noop_overhead_pct") == 1.0

    def test_no_matching_runs_is_none(self):
        assert baseline_for([], "observability", "quick",
                            "tracer_overhead.noop_overhead_pct") is None


class TestGate:
    def test_first_run_has_no_baseline_and_passes(self):
        findings = check_regressions([], [obs_record()])
        assert {f["status"] for f in findings} == {"no_baseline"}

    def test_steady_metrics_pass(self):
        history = [obs_record(when=float(i)) for i in range(BASELINE_WINDOW)]
        findings = check_regressions(history, [obs_record(when=99.0)])
        assert {f["status"] for f in findings} == {"ok"}

    def test_injected_regression_is_flagged(self):
        history = [obs_record(noop_pct=1.0, gap_pct=2.0, when=float(i))
                   for i in range(BASELINE_WINDOW)]
        # Overhead explodes 1% -> 12%: beyond the 100% band and the 2-point
        # absolute floor of the observability spec.
        bad = obs_record(noop_pct=12.0, gap_pct=2.0, when=99.0)
        findings = check_regressions(history, [bad])
        by_metric = {f["metric"]: f for f in findings}
        assert by_metric["tracer_overhead.noop_overhead_pct"]["status"] == "regression"
        assert by_metric["trace_fidelity.phase_gap_pct"]["status"] == "ok"

    def test_noise_under_the_absolute_floor_passes(self):
        history = [obs_record(noop_pct=0.04, when=float(i))
                   for i in range(BASELINE_WINDOW)]
        doubled = obs_record(noop_pct=0.09, when=99.0)  # 2.25x but tiny
        findings = check_regressions(history, [doubled])
        assert all(f["status"] == "ok" for f in findings)

    def test_format_report_marks_regressions(self):
        history = [obs_record(noop_pct=1.0, when=float(i)) for i in range(5)]
        findings = check_regressions(history, [obs_record(noop_pct=12.0)])
        report = format_report(findings)
        assert "REGRESSION" in report
        assert "regression(s)" in report
        clean = format_report(check_regressions(history, [obs_record()]))
        assert "within tolerance" in clean
        assert format_report([]) == "bench-history: no gated metrics found"


class TestCli:
    def _write_bench(self, path, **kwargs):
        path.write_text(json.dumps(obs_payload(**kwargs)) + "\n")

    def test_ingest_then_check_passes(self, tmp_path, capsys):
        bench = tmp_path / "BENCH_obs.json"
        self._write_bench(bench)
        for _ in range(3):
            assert main(["bench-history", "ingest", str(bench)]) == 0
        history = tmp_path / "BENCH_history.jsonl"
        assert history.is_file()  # default: next to the bench file
        assert len(load_history(history)) == 3
        assert main(["bench-history", "check", str(bench)]) == 0
        out = capsys.readouterr().out
        assert "within tolerance" in out

    def test_check_fails_on_synthetic_regression(self, tmp_path, capsys):
        bench = tmp_path / "BENCH_obs.json"
        self._write_bench(bench, noop_pct=1.0)
        for _ in range(3):
            main(["bench-history", "ingest", str(bench)])
        capsys.readouterr()
        self._write_bench(bench, noop_pct=12.0)
        assert main(["bench-history", "check", str(bench)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out

    def test_show_prints_trends(self, tmp_path, capsys):
        bench = tmp_path / "BENCH_obs.json"
        self._write_bench(bench)
        main(["bench-history", "ingest", str(bench)])
        capsys.readouterr()
        assert main(["bench-history", "show", str(bench)]) == 0
        out = capsys.readouterr().out
        assert "tracer_overhead.noop_overhead_pct" in out
        assert "baseline" in out

    def test_explicit_history_path(self, tmp_path, capsys):
        bench = tmp_path / "BENCH_obs.json"
        history = tmp_path / "elsewhere.jsonl"
        self._write_bench(bench)
        assert main(["bench-history", "ingest", str(bench),
                     "--history", str(history)]) == 0
        assert history.is_file()
        capsys.readouterr()

    def test_no_gated_metrics_is_an_error(self, tmp_path, capsys):
        bench = tmp_path / "BENCH_other.json"
        bench.write_text(json.dumps({"benchmark": "mystery"}) + "\n")
        code = main(["bench-history", "check", str(bench)])
        assert code == 2
        assert "error:" in capsys.readouterr().err
