"""Structured logging tests: JSON lines, slow-query escalation, idempotency."""

from __future__ import annotations

import io
import json
import logging

import pytest

from repro.obs.log import (
    configure_logging,
    get_logger,
    log_phase,
    log_request,
    slow_query_threshold_seconds,
)


@pytest.fixture
def capture():
    """Install a fresh repro handler on a StringIO; restore afterwards."""
    stream = io.StringIO()
    logger = configure_logging("json", level="DEBUG", stream=stream)
    try:
        yield stream
    finally:
        for handler in list(logger.handlers):
            if getattr(handler, "_repro_obs", False):
                logger.removeHandler(handler)
        logger.setLevel(logging.NOTSET)
        logger.propagate = True


def _lines(stream: io.StringIO) -> list[dict]:
    return [json.loads(line) for line in stream.getvalue().splitlines()]


class TestJsonLines:
    def test_request_log_is_one_json_object_per_line(self, capture):
        log_request("thread", "/theta", 200, 0.004, quiet=False)
        log_request("async", "/stats", 404, 0.001, quiet=False)
        lines = _lines(capture)
        assert len(lines) == 2
        first = lines[0]
        assert first["event"] == "request"
        assert first["transport"] == "thread"
        assert first["route"] == "/theta"
        assert first["status"] == 200
        assert first["latency_ms"] == 4.0
        assert first["slow"] is False
        assert first["level"] == "INFO"
        assert lines[1]["status"] == 404

    def test_quiet_requests_log_at_debug(self, capture):
        log_request("thread", "/theta", 200, 0.001, quiet=True)
        assert _lines(capture)[0]["level"] == "DEBUG"

    def test_slow_query_escalates_to_warning(self, capture, monkeypatch):
        monkeypatch.setenv("REPRO_SLOW_QUERY_MS", "5")
        assert slow_query_threshold_seconds() == 0.005
        log_request("thread", "/community", 200, 0.05, quiet=True)
        line = _lines(capture)[0]
        assert line["level"] == "WARNING"
        assert line["message"] == "slow query"
        assert line["slow"] is True

    def test_bad_threshold_env_falls_back_to_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SLOW_QUERY_MS", "not-a-number")
        assert slow_query_threshold_seconds() == 0.25

    def test_threshold_env_read_per_call(self, capture, monkeypatch):
        # Mid-process retuning: the same 50 ms request flips between quiet
        # and slow as the env changes, proving the threshold is consulted
        # per request rather than frozen at import.
        monkeypatch.setenv("REPRO_SLOW_QUERY_MS", "500")
        log_request("thread", "/theta", 200, 0.05, quiet=False)
        monkeypatch.setenv("REPRO_SLOW_QUERY_MS", "5")
        log_request("thread", "/theta", 200, 0.05, quiet=False)
        monkeypatch.delenv("REPRO_SLOW_QUERY_MS")  # default 250 ms
        log_request("thread", "/theta", 200, 0.05, quiet=False)
        lines = _lines(capture)
        assert [line["slow"] for line in lines] == [False, True, False]
        assert [line["level"] for line in lines] == ["INFO", "WARNING", "INFO"]

    def test_phase_log_carries_fields(self, capture):
        log_phase("cd", 1.25, wedges_traversed=100)
        line = _lines(capture)[0]
        assert line["event"] == "phase"
        assert line["phase"] == "cd"
        assert line["seconds"] == 1.25
        assert line["wedges_traversed"] == 100
        assert line["logger"] == "repro.core"


class TestConfiguration:
    def test_text_format_appends_structured_fields(self):
        stream = io.StringIO()
        logger = configure_logging("text", level="DEBUG", stream=stream)
        try:
            log_request("thread", "/theta", 200, 0.004, quiet=False)
        finally:
            for handler in list(logger.handlers):
                if getattr(handler, "_repro_obs", False):
                    logger.removeHandler(handler)
            logger.propagate = True
        text = stream.getvalue()
        assert "route=/theta" in text
        assert "status=200" in text
        assert "latency_ms=4.0" in text

    def test_reconfigure_replaces_only_own_handler(self):
        logger = get_logger()
        foreign = logging.NullHandler()
        logger.addHandler(foreign)
        try:
            configure_logging("json", level="INFO", stream=io.StringIO())
            configure_logging("text", level="INFO", stream=io.StringIO())
            own = [h for h in logger.handlers if getattr(h, "_repro_obs", False)]
            assert len(own) == 1
            assert foreign in logger.handlers
        finally:
            for handler in list(logger.handlers):
                if getattr(handler, "_repro_obs", False) or handler is foreign:
                    logger.removeHandler(handler)
            logger.propagate = True

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError):
            configure_logging("yaml")

    def test_get_logger_namespacing(self):
        assert get_logger().name == "repro"
        assert get_logger("service").name == "repro.service"
        assert get_logger("repro.core").name == "repro.core"
