"""Memory telemetry: RSS readers, tracemalloc join, workspace/shm registries."""

from __future__ import annotations

import gc
import tracemalloc

import numpy as np
import pytest

from repro.datasets.generators import random_bipartite
from repro.engine.shm import live_segment_stats, share_fd_job
from repro.engine.tasks import FdJob
from repro.kernels.workspace import WedgeWorkspace, live_workspace_stats
from repro.obs.memory import (
    memory_snapshot,
    peak_rss_bytes,
    rss_bytes,
    tracemalloc_stats,
)


class TestProcessReaders:
    def test_rss_is_a_positive_byte_count(self):
        rss = rss_bytes()
        assert rss is not None
        # A live CPython process with numpy imported holds well over 10 MB.
        assert rss > 10 * 1024 * 1024

    def test_peak_rss_covers_current(self):
        rss, peak = rss_bytes(), peak_rss_bytes()
        assert peak is not None
        # VmHWM is a high-water mark: it can never sit below a current
        # reading taken immediately after (allow a page of slack for the
        # two reads racing an allocation).
        assert peak >= rss - 4096


class TestTracemalloc:
    def test_zeros_when_not_tracing(self):
        if tracemalloc.is_tracing():  # pragma: no cover - PYTHONTRACEMALLOC set
            pytest.skip("tracemalloc active in this interpreter")
        stats = tracemalloc_stats()
        assert stats == {"tracing": False, "current_bytes": 0,
                         "peak_bytes": 0, "top": []}

    def test_sites_reported_when_tracing(self):
        tracemalloc.start()
        try:
            held = [bytearray(256 * 1024) for _ in range(4)]
            stats = tracemalloc_stats(top=5)
        finally:
            tracemalloc.stop()
        assert stats["tracing"] is True
        assert stats["current_bytes"] >= 4 * 256 * 1024
        assert stats["peak_bytes"] >= stats["current_bytes"]
        assert 1 <= len(stats["top"]) <= 5
        for site in stats["top"]:
            assert ":" in site["site"]
            assert site["size_bytes"] > 0 and site["count"] > 0
        del held


class TestWorkspaceRegistry:
    def test_live_workspace_bytes_tracked(self):
        before = live_workspace_stats()
        workspace = WedgeWorkspace()
        workspace.take("scratch", 100_000, np.int64)
        after = live_workspace_stats()
        assert after["workspaces"] >= before["workspaces"] + 1
        assert after["current_bytes"] >= before["current_bytes"] + 800_000
        assert after["peak_bytes"] >= 800_000

    def test_dead_workspaces_drop_out(self):
        workspace = WedgeWorkspace()
        workspace.take("scratch", 50_000, np.int64)
        populated = live_workspace_stats()
        del workspace
        gc.collect()
        drained = live_workspace_stats()
        assert drained["workspaces"] < populated["workspaces"]
        assert drained["current_bytes"] < populated["current_bytes"]

    def test_legacy_workspace_holds_nothing(self):
        workspace = WedgeWorkspace.legacy()
        workspace.take("scratch", 10_000, np.int64)
        # reuse=False: the checkout was a fresh allocation the arena does
        # not retain, so it contributes nothing to current residency.
        stats = live_workspace_stats()
        assert stats["workspaces"] >= 1
        assert workspace._buffers == {}


class TestShmRegistry:
    def test_shared_job_segments_are_counted_until_destroyed(self):
        graph = random_bipartite(30, 20, 120, seed=9)
        job = FdJob(
            graph=graph,
            subsets_flat=np.arange(graph.n_u, dtype=np.int64),
            init_supports=np.zeros(graph.n_u, dtype=np.int64),
        )
        before = live_segment_stats()
        shared = share_fd_job(job)
        try:
            during = live_segment_stats()
            # The job exports the CSR arrays plus the task slices: several
            # owned segments, totalling at least the supports vector.
            assert during["segments"] > before["segments"]
            assert during["bytes"] >= before["bytes"] + job.init_supports.nbytes
        finally:
            shared.destroy()
        after = live_segment_stats()
        assert after["segments"] == before["segments"]
        assert after["bytes"] == before["bytes"]

    def test_destroy_is_idempotent_in_the_registry(self):
        graph = random_bipartite(10, 8, 30, seed=2)
        job = FdJob(
            graph=graph,
            subsets_flat=np.arange(graph.n_u, dtype=np.int64),
            init_supports=np.zeros(graph.n_u, dtype=np.int64),
        )
        baseline = live_segment_stats()
        shared = share_fd_job(job)
        shared.destroy()
        shared.destroy()  # second destroy must not drive counts negative
        assert live_segment_stats() == baseline


class TestSnapshot:
    def test_joins_every_source(self):
        workspace = WedgeWorkspace()
        workspace.take("scratch", 10_000, np.int64)
        snapshot = memory_snapshot(top=3)
        assert set(snapshot) == {"process", "tracemalloc", "workspaces", "shm"}
        assert snapshot["process"]["rss_bytes"] > 0
        assert snapshot["process"]["peak_rss_bytes"] > 0
        assert snapshot["tracemalloc"]["tracing"] in (True, False)
        assert snapshot["workspaces"]["current_bytes"] >= 80_000
        assert set(snapshot["shm"]) == {"segments", "bytes"}
        assert snapshot["shm"]["segments"] >= 0

    def test_extra_merges_at_top_level(self):
        snapshot = memory_snapshot(extra={"artifacts": {"a": {"array_bytes": 7}}})
        assert snapshot["artifacts"] == {"a": {"array_bytes": 7}}

    def test_snapshot_is_json_able(self):
        import json

        json.dumps(memory_snapshot())


@pytest.fixture(autouse=True)
def _no_stray_tracemalloc():
    yield
    if tracemalloc.is_tracing():  # pragma: no cover - test hygiene
        tracemalloc.stop()
