"""Metrics registry tests: quantile bracketing, escaping, shard merge."""

from __future__ import annotations

import math
import re
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import (
    BATCH_SIZE_BUCKETS,
    Histogram,
    LATENCY_BUCKETS_SECONDS,
    MetricRegistry,
    escape_help,
    escape_label_value,
)

# One sample line of the text exposition format: name, optional labels,
# one value token.
_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (NaN|[+-]Inf|[-+0-9.e]+)$"
)


class TestHistogramQuantiles:
    @settings(max_examples=200, deadline=None)
    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=20.0,
                      allow_nan=False, allow_infinity=False),
            min_size=1, max_size=200,
        ),
        q=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_bounds_bracket_the_empirical_quantile(self, values, q):
        histogram = Histogram("h_test", "test", buckets=(0.5, 1.0, 2.0, 5.0, 10.0))
        for value in values:
            histogram.observe(value)
        lo, hi = histogram.quantile_bounds(q)
        n = len(values)
        # Type-1 (inverted CDF) empirical quantile.
        exact = sorted(values)[min(n, max(1, math.ceil(q * n))) - 1]
        assert lo < exact <= hi

    def test_empty_histogram_quantile_is_nan(self):
        histogram = Histogram("h_empty", "test")
        lo, hi = histogram.quantile_bounds(0.5)
        assert math.isnan(lo) and math.isnan(hi)

    def test_overflow_bucket_upper_bound_is_inf(self):
        histogram = Histogram("h_over", "test", buckets=(1.0, 2.0))
        histogram.observe(100.0)
        lo, hi = histogram.quantile_bounds(0.99)
        assert lo == 2.0 and hi == math.inf

    def test_quantile_is_conservative_upper_edge(self):
        histogram = Histogram("h_edge", "test", buckets=(1.0, 2.0, 4.0))
        for value in (0.1, 0.2, 3.0):
            histogram.observe(value)
        assert histogram.quantile(0.5) == 1.0
        assert histogram.quantile(1.0) == 4.0

    def test_rejects_out_of_range_q(self):
        histogram = Histogram("h_bad", "test")
        with pytest.raises(ValueError):
            histogram.quantile_bounds(1.5)

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h_unsorted", "test", buckets=(2.0, 1.0))


class TestPrometheusText:
    def test_label_value_escaping(self):
        assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'
        assert escape_help("line\none \\ two") == "line\\none \\\\ two"

    def test_escaped_labels_render_on_one_line(self):
        registry = MetricRegistry()
        counter = registry.counter("esc_total", "escaping", labelnames=("path",))
        counter.labels(path='a"b\\c\nd').inc()
        text = registry.render()
        assert 'esc_total{path="a\\"b\\\\c\\nd"} 1' in text
        for line in text.splitlines():
            if not line.startswith("#"):
                assert _SAMPLE_RE.match(line), line

    def test_help_and_type_lines(self):
        registry = MetricRegistry()
        registry.gauge("g_one", "help with\nnewline")
        text = registry.render()
        assert "# HELP g_one help with\\nnewline" in text
        assert "# TYPE g_one gauge" in text
        assert text.endswith("\n")

    def test_histogram_rendering_is_cumulative(self):
        registry = MetricRegistry()
        histogram = registry.histogram("lat_seconds", "latency", buckets=(1.0, 2.0))
        for value in (0.5, 1.5, 1.7, 9.0):
            histogram.observe(value)
        text = registry.render()
        assert 'lat_seconds_bucket{le="1"} 1' in text
        assert 'lat_seconds_bucket{le="2"} 3' in text
        assert 'lat_seconds_bucket{le="+Inf"} 4' in text
        assert "lat_seconds_count 4" in text
        assert "lat_seconds_sum 12.7" in text

    def test_invalid_names_rejected(self):
        registry = MetricRegistry()
        with pytest.raises(ValueError):
            registry.counter("1bad", "x")
        with pytest.raises(ValueError):
            registry.counter("ok_total", "x", labelnames=("__reserved",))

    def test_kind_mismatch_rejected_and_get_is_idempotent(self):
        registry = MetricRegistry()
        first = registry.counter("twice_total", "x")
        assert registry.counter("twice_total", "x") is first
        with pytest.raises(ValueError):
            registry.gauge("twice_total", "x")

    def test_failing_callback_does_not_break_scrape(self):
        registry = MetricRegistry()
        registry.gauge("alive", "x").set(1)

        def broken():
            raise RuntimeError("collector exploded")

        registry.register_callback(broken)
        assert "alive 1" in registry.render()

    def test_callbacks_refresh_gauges_at_scrape(self):
        registry = MetricRegistry()
        gauge = registry.gauge("refreshed", "x")
        ticks = []

        def refresh():
            ticks.append(1)
            gauge.set(len(ticks))

        registry.register_callback(refresh)
        assert "refreshed 1" in registry.render()
        assert "refreshed 2" in registry.render()


class TestConcurrency:
    def test_counter_and_histogram_merge_across_threads(self):
        registry = MetricRegistry()
        counter = registry.counter("hits_total", "x")
        histogram = registry.histogram("obs_size", "x", buckets=BATCH_SIZE_BUCKETS)
        n_threads, per_thread = 8, 5000

        def work():
            for i in range(per_thread):
                counter.inc()
                histogram.observe(float(i % 7))

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value() == n_threads * per_thread
        assert histogram.count == n_threads * per_thread

    def test_labelled_children_are_distinct_series(self):
        registry = MetricRegistry()
        counter = registry.counter("req_total", "x", labelnames=("route", "status"))
        counter.labels(route="/theta", status="200").inc(3)
        counter.labels("/theta", "400").inc()
        text = registry.render()
        assert 'req_total{route="/theta",status="200"} 3' in text
        assert 'req_total{route="/theta",status="400"} 1' in text

    def test_default_latency_buckets_are_sane(self):
        assert list(LATENCY_BUCKETS_SECONDS) == sorted(LATENCY_BUCKETS_SECONDS)
        assert LATENCY_BUCKETS_SECONDS[0] <= 0.001
        assert LATENCY_BUCKETS_SECONDS[-1] >= 5.0
