"""Sampling profiler: sample capture, folded export, slot exclusion, CLI sink."""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.obs.profile import (
    DEFAULT_INTERVAL_SECONDS,
    MAX_PROFILE_SECONDS,
    ProfileBusyError,
    SamplingProfiler,
    acquire_profile_slot,
    collect_profile,
    profile_to_file,
    render_folded,
    render_top,
)

PAYLOAD_KEYS = {
    "profile", "interval_seconds", "duration_seconds", "samples",
    "stack_samples", "sample_errors", "started_unix", "threads", "top",
    "folded",
}


def _busy_wait(stop: threading.Event) -> None:
    total = 0
    while not stop.is_set():
        total += sum(range(100))


@pytest.fixture()
def busy_thread():
    """A spinning worker so the sampler always has a stack to capture."""
    stop = threading.Event()
    thread = threading.Thread(target=_busy_wait, args=(stop,),
                              name="busy-worker", daemon=True)
    thread.start()
    yield thread
    stop.set()
    thread.join(timeout=5.0)


class TestSamplingProfiler:
    def test_captures_busy_thread_stacks(self, busy_thread):
        profiler = SamplingProfiler(interval=0.001)
        with profiler:
            time.sleep(0.2)
        payload = profiler.payload(top=10)
        assert set(payload) == PAYLOAD_KEYS
        assert payload["profile"] == "sampling"
        assert payload["samples"] >= 10
        assert payload["stack_samples"] >= 10
        # The spinning worker dominates: its frame appears in the folded
        # stacks and the thread tally knows it by name.
        folded_text = render_folded(payload)
        assert "_busy_wait" in folded_text
        assert "busy-worker" in payload["threads"]
        # Folded sample counts reconcile with the stack-sample total.
        assert sum(e["samples"] for e in payload["folded"]) == payload["stack_samples"]

    def test_top_table_attribution(self, busy_thread):
        profiler = SamplingProfiler(interval=0.001)
        with profiler:
            time.sleep(0.15)
        payload = profiler.payload(top=5)
        assert payload["top"], "no ranked frames"
        for entry in payload["top"]:
            assert entry["total_samples"] >= entry["self_samples"] >= 0
            assert 0.0 <= entry["self_pct"] <= 100.0
        # Ranked by self time, descending.
        selfs = [entry["self_samples"] for entry in payload["top"]]
        assert selfs == sorted(selfs, reverse=True)

    def test_start_stop_idempotent(self):
        profiler = SamplingProfiler(interval=0.001)
        assert profiler.start() is profiler
        assert profiler.start() is profiler  # second start is a no-op
        time.sleep(0.02)
        profiler.stop()
        duration = profiler.duration_seconds()
        profiler.stop()  # second stop is a no-op, duration does not jump
        assert profiler.duration_seconds() == duration

    def test_payload_before_start_is_empty_but_valid(self):
        payload = SamplingProfiler().payload()
        assert set(payload) == PAYLOAD_KEYS
        assert payload["samples"] == 0
        assert payload["stack_samples"] == 0
        assert payload["folded"] == [] and payload["top"] == []
        assert render_folded(payload) == ""
        assert "0 stack samples" in render_top(payload)

    def test_interval_floor(self):
        assert SamplingProfiler(interval=0.0).interval >= 0.0005


class TestProfileSlot:
    def test_slot_is_exclusive(self):
        with acquire_profile_slot():
            with pytest.raises(ProfileBusyError):
                with acquire_profile_slot():
                    pass  # pragma: no cover
        # Released on exit: a new acquisition succeeds.
        with acquire_profile_slot():
            pass

    def test_collect_profile_respects_slot(self):
        with acquire_profile_slot():
            with pytest.raises(ProfileBusyError):
                collect_profile(0.01)


class TestCollectProfile:
    def test_short_collection(self, busy_thread):
        payload = collect_profile(0.1, interval=0.001)
        assert payload["samples"] >= 5
        assert payload["duration_seconds"] >= 0.1

    def test_zero_seconds_is_an_empty_profile(self):
        payload = collect_profile(0.0)
        assert payload["samples"] == 0

    @pytest.mark.parametrize("seconds", [-1.0, MAX_PROFILE_SECONDS + 1])
    def test_out_of_range_duration_rejected(self, seconds):
        with pytest.raises(ValueError):
            collect_profile(seconds)


class TestProfileToFile:
    def test_none_path_is_a_noop(self):
        with profile_to_file(None) as profiler:
            assert profiler is None

    def test_json_suffix_writes_full_payload(self, tmp_path, capsys, busy_thread):
        path = tmp_path / "profile.json"
        with profile_to_file(str(path), interval=0.001):
            time.sleep(0.1)
        payload = json.loads(path.read_text())
        assert set(payload) == PAYLOAD_KEYS
        assert payload["stack_samples"] >= 1
        err = capsys.readouterr().err
        assert "profile written to" in err
        assert "stack samples" in err

    def test_other_suffix_writes_folded_stacks(self, tmp_path, capsys, busy_thread):
        path = tmp_path / "profile.folded"
        with profile_to_file(str(path), interval=0.001):
            time.sleep(0.1)
        text = path.read_text()
        for line in text.strip().splitlines():
            stack, count = line.rsplit(" ", 1)
            assert ";" in stack or stack  # root-first folded frames
            assert int(count) >= 1
        capsys.readouterr()

    def test_default_interval_is_sane(self):
        assert 0.0005 <= DEFAULT_INTERVAL_SECONDS <= 0.1
