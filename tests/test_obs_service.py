"""Serving + CLI observability: /metrics on both transports, trace CLI."""

from __future__ import annotations

import json
import logging
import re
import threading
import urllib.request

import pytest

from repro.cli import main
from repro.core.receipt import tip_decomposition
from repro.datasets.generators import planted_blocks
from repro.service.aserver import start_server_thread
from repro.service.artifacts import save_artifact
from repro.service.server import (
    DOCUMENTED_METRICS,
    ENDPOINTS,
    METRICS_CONTENT_TYPE,
    TipService,
    create_server,
    metric_route,
)

_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (NaN|[+-]Inf|[-+0-9.e]+)$"
)


@pytest.fixture(autouse=True)
def _reset_repro_logging():
    """Drop any handler the CLI installs so tests stay order-independent."""
    yield
    logger = logging.getLogger("repro")
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_obs", False):
            logger.removeHandler(handler)
    logger.setLevel(logging.NOTSET)
    logger.propagate = True


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    graph = planted_blocks(40, 25, [(8, 6), (6, 4)], background_edges=50, seed=3)
    result = tip_decomposition(graph, "U", algorithm="receipt", n_partitions=4)
    path = tmp_path_factory.mktemp("obs") / "blocks.tipidx"
    save_artifact(path, graph, result)
    return path


def _get_text(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, response.headers["Content-Type"], response.read().decode()


def _parse_samples(text):
    samples = {}
    for line in text.splitlines():
        if line.startswith("#"):
            continue
        assert _SAMPLE_RE.match(line), f"invalid exposition line: {line!r}"
        name_labels, value = line.rsplit(" ", 1)
        samples[name_labels] = value
    return samples


class TestThreadedMetrics:
    @pytest.fixture(scope="class")
    def base_url(self, artifact):
        server = create_server([artifact], port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[0], server.server_address[1]
        yield f"http://{host}:{port}"
        server.shutdown()
        server.server_close()

    def test_scrape_is_valid_and_complete(self, base_url):
        for vertex in range(4):
            urllib.request.urlopen(f"{base_url}/theta?vertex={vertex}", timeout=10).read()
        status, content_type, text = _get_text(f"{base_url}/metrics")
        assert status == 200
        assert content_type == METRICS_CONTENT_TYPE
        samples = _parse_samples(text)
        for name in DOCUMENTED_METRICS:
            assert f"# TYPE {name} " in text, name
        # The latency histogram is populated for the route we hit.
        bucket = ('repro_http_request_seconds_bucket'
                  '{transport="thread",route="/theta",le="+Inf"}')
        assert int(float(samples[bucket])) >= 4
        counted = ('repro_http_requests_total'
                   '{transport="thread",route="/theta",status="200"}')
        assert int(float(samples[counted])) >= 4

    def test_scrape_time_gauges_refresh(self, base_url):
        _, _, first = _get_text(f"{base_url}/metrics")
        uptime1 = float(_parse_samples(first)["repro_server_uptime_seconds"])
        _, _, second = _get_text(f"{base_url}/metrics")
        uptime2 = float(_parse_samples(second)["repro_server_uptime_seconds"])
        assert uptime2 > uptime1 > 0.0
        samples = _parse_samples(second)
        assert float(samples["repro_server_start_time_seconds"]) > 0
        staleness = [key for key in samples
                     if key.startswith("repro_artifact_staleness_seconds")]
        assert staleness and float(samples[staleness[0]]) >= 0.0

    def test_stats_server_block(self, base_url):
        with urllib.request.urlopen(f"{base_url}/stats", timeout=10) as response:
            payload = json.loads(response.read())
        server = payload["server"]
        assert server["started_unix"] > 0
        assert server["uptime_seconds"] >= 0
        first = server["requests_total"].get("/stats", 0)
        assert first >= 1
        with urllib.request.urlopen(f"{base_url}/stats", timeout=10) as response:
            payload = json.loads(response.read())
        assert payload["server"]["requests_total"]["/stats"] > first

    def test_unknown_routes_collapse_into_one_label(self, base_url):
        for path in ("/nope", "/admin", "/x/y/z"):
            try:
                urllib.request.urlopen(base_url + path, timeout=10)
            except urllib.error.HTTPError as error:
                assert error.code == 404
        _, _, text = _get_text(f"{base_url}/metrics")
        samples = _parse_samples(text)
        unknown = ('repro_http_requests_total'
                   '{transport="thread",route="<unknown>",status="404"}')
        assert int(float(samples[unknown])) >= 3
        assert not any('route="/nope"' in key for key in samples)


class TestAsyncMetrics:
    @pytest.fixture(scope="class")
    def handle(self, artifact):
        handle = start_server_thread([artifact])
        yield handle
        handle.stop()

    def test_scrape_includes_coalescer_histograms(self, handle):
        for vertex in range(6):
            urllib.request.urlopen(
                f"{handle.base_url}/theta?vertex={vertex}", timeout=10).read()
        status, content_type, text = _get_text(f"{handle.base_url}/metrics")
        assert status == 200
        assert content_type == METRICS_CONTENT_TYPE
        samples = _parse_samples(text)
        for name in DOCUMENTED_METRICS:
            assert f"# TYPE {name} " in text, name
        assert int(float(samples["repro_coalesce_batch_size_count"])) >= 6
        assert int(float(samples["repro_coalesce_wait_seconds_count"])) >= 6
        counted = ('repro_http_requests_total'
                   '{transport="async",route="/theta",status="200"}')
        assert int(float(samples[counted])) >= 6

    def test_latency_includes_coalescer_wait(self, handle):
        # The deferred theta response is observed when its future resolves;
        # the histogram count equals the requests actually answered.
        urllib.request.urlopen(f"{handle.base_url}/theta?vertex=1", timeout=10).read()
        _, _, text = _get_text(f"{handle.base_url}/metrics")
        samples = _parse_samples(text)
        count = ('repro_http_request_seconds_count'
                 '{transport="async",route="/theta"}')
        total = ('repro_http_request_seconds_sum'
                 '{transport="async",route="/theta"}')
        assert int(float(samples[count])) >= 1
        assert float(samples[total]) > 0.0


class TestOfflineService:
    def test_metrics_text_needs_no_transport(self, artifact):
        service = TipService([artifact])
        service.observe_request("thread", "/theta", 200, 0.001)
        text = service.metrics_text()
        _parse_samples(text)  # every sample line is well-formed
        for name in DOCUMENTED_METRICS:
            assert f"# TYPE {name} " in text, name

    def test_metric_route_normalisation(self):
        for route in ENDPOINTS:
            assert metric_route(route) == route
        assert metric_route("/metrics") == "/metrics"
        assert metric_route("/etc/passwd") == "<unknown>"

    def test_metrics_is_not_a_json_endpoint(self):
        # /metrics is a transport concern; the JSON API surface (and the
        # byte-identical transport comparison built on it) is unchanged.
        assert "/metrics" not in ENDPOINTS


class TestCli:
    def test_decompose_trace_out_and_summary(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        code = main(["decompose", "--dataset", "it", "--scale", "0.05",
                     "--seed", "1", "--trace-out", str(trace_path)])
        assert code == 0
        captured = capsys.readouterr()
        summary = json.loads(captured.out)
        assert summary["algorithm"] == "RECEIPT"
        payload = json.loads(trace_path.read_text())
        assert payload["traceEvents"] and payload["spans"]
        names = {span["name"] for span in payload["spans"]}
        assert {"receipt", "pvBcnt", "cd", "fd"} <= names
        # Phase totals within 5% of the root wall-clock.
        root = next(s for s in payload["spans"] if s["name"] == "receipt")
        phases = [s for s in payload["spans"]
                  if s["parent"] == root["id"] and s["name"] in ("pvBcnt", "cd", "fd")]
        assert sum(s["dur"] for s in phases) <= root["dur"] * 1.001

        code = main(["trace-summary", str(trace_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "phase breakdown" in out
        assert "cd" in out and "fd" in out

    def test_trace_summary_rejects_missing_file(self, tmp_path, capsys):
        code = main(["trace-summary", str(tmp_path / "absent.json")])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_json_log_format_emits_json_lines(self, capsys):
        code = main(["--log-format", "json", "decompose", "--dataset", "it",
                     "--scale", "0.05", "--seed", "1"])
        assert code == 0
        err = capsys.readouterr().err
        phase_lines = [json.loads(line) for line in err.splitlines()
                       if line.startswith("{")]
        assert any(line.get("event") == "phase" for line in phase_lines)

    def test_build_index_trace_out(self, tmp_path, capsys):
        trace_path = tmp_path / "build.json"
        out_path = tmp_path / "small.tipidx"
        code = main(["build-index", "--dataset", "it", "--scale", "0.05",
                     "--seed", "1", "--output", str(out_path),
                     "--trace-out", str(trace_path)])
        assert code == 0
        capsys.readouterr()
        payload = json.loads(trace_path.read_text())
        assert any(span["name"] == "receipt" for span in payload["spans"])

    def test_decompose_profile_out_writes_a_profile(self, tmp_path, capsys):
        profile_path = tmp_path / "decompose.json"
        code = main(["decompose", "--dataset", "it", "--scale", "0.1",
                     "--seed", "1", "--profile-out", str(profile_path),
                     "--profile-interval-ms", "1"])
        assert code == 0
        captured = capsys.readouterr()
        summary = json.loads(captured.out)
        assert summary["algorithm"] == "RECEIPT"
        assert "profile written to" in captured.err
        payload = json.loads(profile_path.read_text())
        assert payload["profile"] == "sampling"
        assert payload["interval_seconds"] == pytest.approx(0.001)

    def test_decompose_profile_out_folded_text(self, tmp_path, capsys):
        profile_path = tmp_path / "decompose.folded"
        code = main(["decompose", "--dataset", "it", "--scale", "0.1",
                     "--seed", "1", "--profile-out", str(profile_path),
                     "--profile-interval-ms", "1"])
        assert code == 0
        capsys.readouterr()
        text = profile_path.read_text()
        for line in text.strip().splitlines():
            _stack, count = line.rsplit(" ", 1)
            assert int(count) >= 1

    def test_compare_trace_out_covers_both_runs(self, tmp_path, capsys):
        trace_path = tmp_path / "compare.json"
        code = main(["compare", "--dataset", "it", "--scale", "0.05",
                     "--seed", "1", "--first", "receipt", "--second", "bup",
                     "--trace-out", str(trace_path)])
        assert code == 0
        capsys.readouterr()
        payload = json.loads(trace_path.read_text())
        roots = [span["name"] for span in payload["spans"]
                 if span["parent"] is None]
        # One trace, two algorithm roots: the comparison itself is traced.
        assert "receipt" in roots and "bup" in roots

    def test_update_trace_out_records_streaming_phases(self, tmp_path, capsys):
        artifact = tmp_path / "upd.tipidx"
        assert main(["build-index", "--dataset", "it", "--scale", "0.05",
                     "--seed", "1", "--output", str(artifact)]) == 0
        trace_path = tmp_path / "update.json"
        code = main(["update", str(artifact), "--delete", "0:1",
                     "--trace-out", str(trace_path)])
        assert code == 0
        capsys.readouterr()
        payload = json.loads(trace_path.read_text())
        names = {span["name"] for span in payload["spans"]}
        assert "streaming.update" in names

        # trace-summary surfaces the streaming repair phases, not just the
        # decomposition's CD/FD split.
        code = main(["trace-summary", str(trace_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "streaming.update" in out
        assert "phase breakdown" in out

    def test_trace_summary_dedupes_repeated_roots(self, tmp_path, capsys):
        # A serve-session trace holds one root per applied batch; the
        # summary folds them into "name ×N" instead of an endless list.
        from repro.obs.report import write_trace
        from repro.obs.trace import Tracer

        tracer = Tracer()
        for _ in range(3):
            with tracer.span("streaming.update"):
                with tracer.span("streaming.support_delta"):
                    pass
        path = tmp_path / "serve.json"
        write_trace(tracer, str(path))
        assert main(["trace-summary", str(path)]) == 0
        out = capsys.readouterr().out
        assert "streaming.update ×3" in out
        assert "streaming.support_delta" in out
