"""SLO monitor: objective validation, burn-rate windows, escalation logging."""

from __future__ import annotations

import logging

import pytest

from repro.obs.slo import DEFAULT_OBJECTIVES, Objective, SloMonitor


@pytest.fixture(autouse=True)
def _propagating_repro_logger():
    """Let SLO log records reach caplog even if a CLI test configured the
    repro logger (configure_logging sets propagate=False)."""
    logger = logging.getLogger("repro")
    previous = logger.propagate
    logger.propagate = True
    yield
    logger.propagate = previous


class FakeCounters:
    """Mutable cumulative counters standing in for the service instruments."""

    def __init__(self):
        self.good = 0
        self.total = 0
        self.errors = 0
        self.staleness = None

    def latency(self, threshold_seconds):
        return self.good, self.total

    def availability(self):
        return self.errors, self.total

    def worst_staleness(self):
        return self.staleness


def make_monitor(objectives):
    counters = FakeCounters()
    monitor = SloMonitor(
        latency_source=counters.latency,
        availability_source=counters.availability,
        staleness_source=counters.worst_staleness,
        objectives=objectives,
    )
    return counters, monitor


LATENCY = Objective(name="lat", kind="latency", description="p99 under 250 ms",
                    target=0.9, window_seconds=10.0, threshold_seconds=0.25)
AVAILABILITY = Objective(name="avail", kind="availability",
                         description="99% non-5xx", target=0.99,
                         window_seconds=10.0)
STALENESS = Objective(name="stale", kind="staleness",
                      description="fresh within 200 s",
                      threshold_seconds=200.0)


class TestObjective:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown objective kind"):
            Objective(name="x", kind="throughput", description="")

    def test_latency_needs_threshold(self):
        with pytest.raises(ValueError, match="threshold_seconds"):
            Objective(name="x", kind="latency", description="")

    def test_target_must_be_a_proportion(self):
        with pytest.raises(ValueError, match="target"):
            Objective(name="x", kind="availability", description="", target=1.5)

    def test_to_dict_round_trips_the_promise(self):
        entry = LATENCY.to_dict()
        assert entry["name"] == "lat" and entry["kind"] == "latency"
        assert entry["target"] == 0.9 and entry["threshold_seconds"] == 0.25

    def test_default_objectives_cover_all_kinds(self):
        kinds = {objective.kind for objective in DEFAULT_OBJECTIVES}
        assert kinds == {"latency", "availability", "staleness"}


class TestWindowedEvaluation:
    def test_no_traffic_is_no_data_not_breach(self):
        _, monitor = make_monitor((AVAILABILITY,))
        payload = monitor.evaluate(now=0.0)
        assert payload["status"] == "ok"
        entry = payload["objectives"][0]
        assert entry["state"] == "no_data"
        assert entry["burn_rate"] == 0.0
        assert not monitor.degraded()

    def test_error_rate_within_budget_is_ok(self):
        counters, monitor = make_monitor((AVAILABILITY,))
        counters.total, counters.errors = 1000, 5  # 0.5% < 1% budget
        payload = monitor.evaluate(now=0.0)
        entry = payload["objectives"][0]
        assert entry["state"] == "ok"
        assert entry["burn_rate"] == pytest.approx(0.5)
        assert entry["compliance"] == pytest.approx(0.995)
        assert entry["window_requests"] == 1000

    def test_burn_above_one_degrades(self):
        counters, monitor = make_monitor((AVAILABILITY,))
        counters.total, counters.errors = 100, 5  # 5% error vs 1% budget
        payload = monitor.evaluate(now=0.0)
        assert payload["status"] == "degraded"
        assert payload["objectives"][0]["burn_rate"] == pytest.approx(5.0)
        assert monitor.degraded()

    def test_latency_objective_counts_slow_requests(self):
        counters, monitor = make_monitor((LATENCY,))
        counters.good, counters.total = 70, 100  # 30% slow vs 10% budget
        entry = monitor.evaluate(now=0.0)["objectives"][0]
        assert entry["state"] == "breached"
        assert entry["burn_rate"] == pytest.approx(3.0)
        assert entry["window_errors"] == 30

    def test_window_differences_cumulative_counters(self):
        # An early error burst must age out of the rolling window instead
        # of tainting the burn rate forever.
        counters, monitor = make_monitor((AVAILABILITY,))
        counters.total, counters.errors = 100, 50
        assert monitor.evaluate(now=0.0)["status"] == "degraded"
        # 30 s later (window is 10 s) the errors stopped and healthy
        # traffic flowed: the delta vs the >= window-old baseline is clean.
        counters.total, counters.errors = 1100, 50
        payload = monitor.evaluate(now=30.0)
        entry = payload["objectives"][0]
        assert entry["state"] == "ok"
        assert entry["burn_rate"] == 0.0
        assert entry["window_errors"] == 0
        assert payload["status"] == "ok"

    def test_young_process_uses_oldest_snapshot(self):
        counters, monitor = make_monitor((AVAILABILITY,))
        counters.total = 10
        monitor.evaluate(now=0.0)
        counters.total, counters.errors = 110, 4  # 4 errors in 100 new reqs
        entry = monitor.evaluate(now=2.0)["objectives"][0]
        assert entry["window_requests"] == 100
        assert entry["window_errors"] == 4
        assert entry["state"] == "breached"  # 4% > 1% budget


class TestStaleness:
    def test_fresh_artifact_is_ok(self):
        counters, monitor = make_monitor((STALENESS,))
        counters.staleness = 100.0
        entry = monitor.evaluate(now=0.0)["objectives"][0]
        assert entry["state"] == "ok"
        assert entry["burn_rate"] == pytest.approx(0.5)
        assert entry["staleness_seconds"] == 100.0

    def test_stale_artifact_breaches(self):
        counters, monitor = make_monitor((STALENESS,))
        counters.staleness = 500.0
        payload = monitor.evaluate(now=0.0)
        assert payload["status"] == "degraded"
        assert payload["objectives"][0]["burn_rate"] == pytest.approx(2.5)

    def test_unknown_staleness_is_no_data(self):
        _, monitor = make_monitor((STALENESS,))
        entry = monitor.evaluate(now=0.0)["objectives"][0]
        assert entry["state"] == "no_data"
        assert entry["staleness_seconds"] is None


class TestEscalation:
    def test_breach_logs_warning_once_and_recovery_logs_info(self, caplog):
        counters, monitor = make_monitor((AVAILABILITY,))
        with caplog.at_level(logging.INFO, logger="repro.obs.slo"):
            counters.total, counters.errors = 100, 10
            monitor.evaluate(now=0.0)
            counters.total, counters.errors = 200, 20
            monitor.evaluate(now=1.0)  # still breached: no second warning
            counters.total, counters.errors = 2200, 20
            monitor.evaluate(now=30.0)  # recovered
        warnings = [r for r in caplog.records if r.levelno == logging.WARNING]
        infos = [r for r in caplog.records if r.levelno == logging.INFO]
        assert len(warnings) == 1
        assert "SLO breached: avail" in warnings[0].getMessage()
        assert any("SLO recovered: avail" in r.getMessage() for r in infos)

    def test_burn_rates_reflect_last_evaluation(self):
        counters, monitor = make_monitor((AVAILABILITY, STALENESS))
        # Before any evaluation: everything nominally ok at burn 0.
        assert monitor.burn_rates() == {"avail": (0.0, True), "stale": (0.0, True)}
        counters.total, counters.errors = 100, 10
        counters.staleness = 50.0
        monitor.evaluate(now=0.0)
        rates = monitor.burn_rates()
        assert rates["avail"] == (10.0, False)
        assert rates["stale"] == (pytest.approx(0.25), True)

    def test_last_payload_is_stored(self):
        counters, monitor = make_monitor((AVAILABILITY,))
        assert monitor.last_payload is None
        payload = monitor.evaluate(now=0.0)
        assert monitor.last_payload is payload
