"""Tracing core tests: nesting, no-op cost model, cross-process merge."""

from __future__ import annotations

import json
import time

import pytest

from repro.core.receipt import tip_decomposition
from repro.datasets.generators import planted_blocks
from repro.obs.report import format_summary, load_trace, summarize, write_trace
from repro.obs.trace import NOOP_TRACER, Tracer, current_tracer, use_tracer


def _by_name(spans):
    grouped: dict = {}
    for span in spans:
        grouped.setdefault(span["name"], []).append(span)
    return grouped


class TestSpans:
    def test_nesting_establishes_parent_links(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        spans = tracer.export()
        assert [span["name"] for span in spans] == ["outer", "inner"]
        assert spans[1]["parent"] == spans[0]["id"]

    def test_attributes_and_durations(self):
        tracer = Tracer()
        with tracer.timed("phase", side="U") as span:
            span.set(wedges=42)
            time.sleep(0.01)
        exported = tracer.export()[0]
        assert exported["attrs"] == {"side": "U", "wedges": 42}
        assert exported["dur"] >= 0.01
        assert span.duration == exported["dur"]

    def test_sibling_spans_share_a_parent(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        grouped = _by_name(tracer.export())
        assert grouped["a"][0]["parent"] == root.span_id
        assert grouped["b"][0]["parent"] == root.span_id

    def test_noop_span_is_shared_and_free(self):
        one = NOOP_TRACER.span("x")
        two = NOOP_TRACER.span("y", attr=1)
        assert one is two  # the shared singleton: no allocation per call
        assert one.duration == 0.0
        with one as span:
            assert span.set(a=1) is span

    def test_noop_timed_still_measures(self):
        # Counters derive elapsed_seconds from timed() spans, so timing
        # must be real even when nothing is recorded.
        with NOOP_TRACER.timed("phase") as span:
            time.sleep(0.01)
        assert span.duration >= 0.01
        assert NOOP_TRACER.export() == []

    def test_mid_span_elapsed(self):
        tracer = Tracer()
        with tracer.timed("open") as span:
            time.sleep(0.005)
            assert span.elapsed() >= 0.005

    def test_use_tracer_installs_and_restores(self):
        assert current_tracer() is NOOP_TRACER
        tracer = Tracer()
        with use_tracer(tracer):
            assert current_tracer() is tracer
            inner = Tracer()
            with use_tracer(inner):
                assert current_tracer() is inner
            assert current_tracer() is tracer
        assert current_tracer() is NOOP_TRACER

    def test_clear_drops_finished_spans(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        tracer.clear()
        assert tracer.export() == []


class TestMerge:
    def test_add_spans_rebases_and_attaches_orphans(self):
        worker = Tracer()
        with worker.span("fd.peel_subset", subset=3):
            with worker.span("child"):
                pass
        parent = Tracer()
        with parent.span("fd") as fd_span:
            parent.add_spans(worker.export(), parent=fd_span)
        grouped = _by_name(parent.export())
        subset = grouped["fd.peel_subset"][0]
        child = grouped["child"][0]
        assert subset["parent"] == fd_span.span_id
        assert child["parent"] == subset["id"]
        # Re-based onto the parent's timeline, not the worker's.
        assert subset["start"] >= 0.0

    def test_add_spans_on_noop_tracer_is_dropped(self):
        worker = Tracer()
        with worker.span("x"):
            pass
        NOOP_TRACER.add_spans(worker.export(), parent=None)
        assert NOOP_TRACER.export() == []

    def test_empty_worker_export_is_a_noop(self):
        # A worker whose subset peeled zero vertices exports no spans; the
        # merge must neither fail nor leave partial state behind.
        parent = Tracer()
        with parent.span("fd") as fd_span:
            parent.add_spans([], parent=fd_span)
        exported = parent.export()
        assert [span["name"] for span in exported] == ["fd"]

    def test_orphan_roots_with_dead_parent_id_reattach(self):
        # A worker export can carry spans whose parent id references a span
        # that did not travel (dropped, filtered, or from an earlier batch).
        # Those orphans must attach to the given parent, not keep a dangling
        # id from another process's id space.
        parent = Tracer()
        dead_parent_id = 999_999
        orphans = [
            {"name": "fd.peel_subset", "id": 1, "parent": dead_parent_id,
             "start": 0.0, "dur": 0.01, "tid": 1, "pid": 42, "attrs": {},
             "start_unix": parent._wall0 + 0.001},
            {"name": "child", "id": 2, "parent": 1,
             "start": 0.0, "dur": 0.005, "tid": 1, "pid": 42, "attrs": {},
             "start_unix": parent._wall0 + 0.002},
        ]
        with parent.span("fd") as fd_span:
            parent.add_spans(orphans, parent=fd_span)
        grouped = _by_name(parent.export())
        subset = grouped["fd.peel_subset"][0]
        assert subset["parent"] == fd_span.span_id
        # The intact intra-export link was remapped, not rerooted.
        assert grouped["child"][0]["parent"] == subset["id"]
        # Imported ids were re-issued from this process's id source.
        assert subset["id"] != 1

    def test_add_spans_without_parent_leaves_roots(self):
        worker = Tracer()
        with worker.span("orphan"):
            pass
        parent = Tracer()
        parent.add_spans(worker.export(), parent=None)
        exported = parent.export()
        assert exported[0]["name"] == "orphan"
        assert exported[0]["parent"] is None

    def test_wall_anchor_before_parent_trace_start_clamps_to_zero(self):
        # Clock skew (or a worker that started before the parent tracer)
        # can anchor an imported span before the parent's wall-clock zero;
        # re-basing must clamp to the timeline origin, never go negative.
        parent = Tracer()
        early = [{"name": "skewed", "id": 7, "parent": None,
                  "start": 0.0, "dur": 0.002, "tid": 1, "pid": 42, "attrs": {},
                  "start_unix": parent._wall0 - 5.0}]
        parent.add_spans(early, parent=None)
        span = parent.export()[0]
        assert span["start"] == 0.0
        assert span["dur"] == 0.002

    def test_add_spans_does_not_mutate_the_input(self):
        parent = Tracer()
        source = [{"name": "x", "id": 3, "parent": None, "start": 1.0,
                   "dur": 0.1, "tid": 1, "pid": 42, "attrs": {},
                   "start_unix": parent._wall0 + 0.5}]
        snapshot = [dict(span) for span in source]
        with parent.span("root") as root:
            parent.add_spans(source, parent=root)
        assert source == snapshot  # caller's dicts untouched (workers reuse them)


class TestReceiptTracing:
    @pytest.fixture(scope="class")
    def graph(self):
        return planted_blocks(40, 25, [(8, 6), (6, 4)], background_edges=50, seed=3)

    def test_phase_spans_cover_the_run(self, graph):
        tracer = Tracer()
        with use_tracer(tracer):
            result = tip_decomposition(graph, "U", algorithm="receipt", n_partitions=4)
        grouped = _by_name(tracer.export())
        for phase in ("receipt", "pvBcnt", "cd", "fd", "fd.peel_subset"):
            assert phase in grouped, phase
        root = grouped["receipt"][0]
        # The counters' elapsed time IS the root span duration.
        assert result.counters.elapsed_seconds == root["dur"]
        for phase in ("pvBcnt", "cd", "fd"):
            assert grouped[phase][0]["parent"] == root["id"]
        # Phase spans nest inside the root window and sum to within 5%
        # of the root wall-clock.
        phase_total = sum(grouped[name][0]["dur"] for name in ("pvBcnt", "cd", "fd"))
        assert phase_total <= root["dur"] * 1.001
        assert phase_total >= root["dur"] * 0.5
        assert result.phase_counters["cd"].elapsed_seconds == grouped["cd"][0]["dur"]

    def test_process_backend_merges_worker_spans(self, graph):
        tracer = Tracer()
        with use_tracer(tracer):
            tip_decomposition(graph, "U", algorithm="receipt", n_partitions=4,
                              backend="process", n_threads=2)
        grouped = _by_name(tracer.export())
        fd_span = grouped["fd"][0]
        subsets = grouped["fd.peel_subset"]
        assert subsets, "worker spans did not travel back through the engine"
        assert all(span["parent"] == fd_span["id"] for span in subsets)
        assert all("subset" in span["attrs"] for span in subsets)
        # Worker spans were re-based into the parent timeline: they start
        # inside the fd phase window (with generous slack for clock skew).
        for span in subsets:
            assert span["start"] >= fd_span["start"] - 0.05

    def test_untraced_run_records_nothing(self, graph):
        result = tip_decomposition(graph, "U", algorithm="receipt", n_partitions=4)
        assert result.counters.elapsed_seconds > 0
        assert NOOP_TRACER.export() == []


class TestReports:
    def _traced_run(self):
        tracer = Tracer()
        with use_tracer(tracer):
            graph = planted_blocks(30, 20, [(6, 5)], background_edges=30, seed=7)
            tip_decomposition(graph, "U", algorithm="receipt", n_partitions=3)
        return tracer

    def test_chrome_trace_format(self):
        tracer = self._traced_run()
        payload = tracer.chrome_trace()
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        assert events
        for event in events:
            assert event["ph"] == "X"
            assert event["cat"] == "repro"
            assert event["dur"] >= 0.0

    def test_write_and_load_roundtrip(self, tmp_path):
        tracer = self._traced_run()
        path = tmp_path / "trace.json"
        payload = write_trace(tracer, str(path))
        on_disk = json.loads(path.read_text())
        assert on_disk["spans"] == payload["spans"]
        assert len(on_disk["traceEvents"]) == len(payload["spans"])
        spans = load_trace(str(path))
        assert spans == payload["spans"]

    def test_summary_phase_totals_match_wall_clock(self, tmp_path):
        tracer = self._traced_run()
        path = tmp_path / "trace.json"
        write_trace(tracer, str(path))
        summary = summarize(load_trace(str(path)))
        assert summary["roots"] == ["receipt"]
        phases = summary["phases"]
        assert set(phases) >= {"pvBcnt", "cd", "fd"}
        # Direct children of the root partition its wall time: their sum
        # can't exceed it and must account for (nearly) all of it.
        assert sum(phases.values()) <= summary["wall_seconds"] * 1.001
        assert sum(phases.values()) >= summary["wall_seconds"] * 0.5

    def test_summary_from_bare_chrome_events(self, tmp_path):
        # A trace file without the "spans" key (plain chrome://tracing
        # export) is reconstructed from event containment.
        tracer = self._traced_run()
        path = tmp_path / "bare.json"
        path.write_text(json.dumps(tracer.chrome_trace()))
        summary = summarize(load_trace(str(path)))
        assert "receipt" in summary["roots"]
        assert summary["phases"]

    def test_format_summary_is_readable(self, tmp_path):
        tracer = self._traced_run()
        path = tmp_path / "trace.json"
        write_trace(tracer, str(path))
        text = format_summary(load_trace(str(path)))
        assert "phase breakdown" in text
        assert "cd" in text and "fd" in text
        assert "%" in text
