"""Unit tests for atomic counters and arrays."""

import threading

import numpy as np

from repro.parallel.atomics import AtomicArray, AtomicCounter


class TestAtomicCounter:
    def test_basic_operations(self):
        counter = AtomicCounter(5)
        assert counter.value == 5
        assert counter.add(3) == 8
        assert counter.increment() == 9
        assert counter.fetch_add(10) == 9
        assert counter.value == 19
        counter.reset()
        assert counter.value == 0

    def test_concurrent_increments(self):
        counter = AtomicCounter()

        def worker():
            for _ in range(1000):
                counter.increment()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8000


class TestAtomicArray:
    def test_basic_operations(self):
        array = AtomicArray(4)
        assert len(array) == 4
        array.set(2, 10)
        assert array.get(2) == 10
        assert array.add(2, 5) == 15

    def test_subtract_clamped(self):
        array = AtomicArray(2)
        array.set(0, 10)
        assert array.subtract_clamped(0, 3, floor=0) == 7
        assert array.subtract_clamped(0, 100, floor=5) == 5
        assert array.get(0) == 5

    def test_snapshot_is_a_copy(self):
        array = AtomicArray(3)
        array.set(0, 1)
        snapshot = array.snapshot()
        array.set(0, 99)
        assert snapshot[0] == 1
        assert array.raw[0] == 99

    def test_concurrent_support_updates(self):
        # Mimic the RECEIPT CD update pattern: many threads decrement the
        # same supports concurrently; the net effect must be exact.
        array = AtomicArray(10)
        for index in range(10):
            array.set(index, 10_000)

        def worker(seed):
            rng = np.random.default_rng(seed)
            for _ in range(500):
                index = int(rng.integers(0, 10))
                array.subtract_clamped(index, 1, floor=0)

        threads = [threading.Thread(target=worker, args=(seed,)) for seed in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        total_decrement = 10 * 10_000 - int(array.snapshot().sum())
        assert total_decrement == 6 * 500
