"""Unit tests for the analytical parallel cost model."""

import numpy as np
import pytest

from repro.parallel.costmodel import ParallelCostModel, RegionCost
from repro.parallel.threadpool import ParallelRegionRecord


class TestRegionCost:
    def test_single_thread_makespan_is_total(self):
        region = RegionCost("r", np.array([3.0, 4.0, 5.0]))
        assert region.makespan(1) == 12.0
        assert region.total_work == 12.0

    def test_dynamic_scheduling_balances(self):
        region = RegionCost("r", np.array([4.0, 4.0, 4.0, 4.0]), scheduling="dynamic")
        assert region.makespan(2) == 8.0
        assert region.makespan(4) == 4.0

    def test_lpt_beats_or_equals_static_on_skew(self):
        work = np.array([10.0, 1.0, 1.0, 1.0, 1.0, 10.0])
        static = RegionCost("s", work, scheduling="static")
        lpt = RegionCost("l", work, scheduling="lpt")
        assert lpt.makespan(2) <= static.makespan(2)

    def test_sequential_work_not_parallelised(self):
        region = RegionCost("r", np.array([10.0, 10.0]), sequential_work=5.0)
        assert region.makespan(2) == 15.0
        assert region.makespan(1) == 25.0

    def test_unknown_scheduling_rejected(self):
        with pytest.raises(ValueError):
            RegionCost("r", np.array([1.0]), scheduling="magic")

    def test_empty_region(self):
        region = RegionCost("r", np.array([]))
        assert region.makespan(8) == 0.0


class TestParallelCostModel:
    def test_amdahl_like_behaviour(self):
        model = ParallelCostModel(barrier_cost=0.0, numa_penalty=0.0)
        model.add_region("parallel", np.ones(1000))
        model.add_sequential("serial", 100.0)
        speedup_at_10 = model.speedup(10)
        assert 1.0 < speedup_at_10 < 10.0
        # Amdahl: with 1/11 of the work serial, speedup is capped at 11.
        assert model.speedup(10_000) < 11.0

    def test_barrier_cost_penalises_many_rounds(self):
        few_rounds = ParallelCostModel(barrier_cost=100.0)
        few_rounds.add_region("one", np.ones(1000))
        many_rounds = ParallelCostModel(barrier_cost=100.0)
        for _ in range(100):
            many_rounds.add_region("round", np.ones(10))
        assert few_rounds.speedup(8) > many_rounds.speedup(8)

    def test_numa_penalty_kicks_in_beyond_threshold(self):
        model = ParallelCostModel(barrier_cost=0.0, numa_threshold=4, numa_penalty=1.0)
        model.add_region("r", np.ones(64))
        time_at_4 = model.simulated_time(4)
        time_at_5 = model.simulated_time(5)
        # Despite one more thread, the doubled work cost makes it slower.
        assert time_at_5 > time_at_4

    def test_empty_model(self):
        model = ParallelCostModel()
        assert model.simulated_time(4) == 0.0
        assert model.speedup(4) == 1.0

    def test_invalid_thread_count(self):
        model = ParallelCostModel()
        model.add_region("r", np.ones(4))
        with pytest.raises(ValueError):
            model.simulated_time(0)

    def test_speedup_curve_points(self):
        model = ParallelCostModel(barrier_cost=0.0)
        model.add_region("r", np.ones(100))
        points = model.speedup_curve([1, 2, 4])
        assert [point.n_threads for point in points] == [1, 2, 4]
        assert points[0].speedup == pytest.approx(1.0)
        assert points[2].speedup > points[1].speedup > 1.0

    def test_extend_composes_models(self):
        first = ParallelCostModel()
        first.add_region("a", np.ones(10))
        second = ParallelCostModel()
        second.add_region("b", np.ones(20))
        first.extend(second)
        assert first.total_work == 30.0
        assert len(first.regions) == 2

    def test_from_region_records(self):
        records = [
            ParallelRegionRecord(name="counting", n_tasks=4, total_work=40.0,
                                 task_work=[10.0, 10.0, 10.0, 10.0]),
            ParallelRegionRecord(name="peel", n_tasks=2, total_work=8.0, task_work=[]),
            ParallelRegionRecord(name="empty", n_tasks=0, total_work=0.0, task_work=[]),
        ]
        model = ParallelCostModel.from_region_records(records, barrier_cost=0.0)
        assert len(model.regions) == 3
        assert model.total_work == pytest.approx(48.0)
        # The record without per-task work is split evenly over its tasks.
        assert model.regions[1].task_work.tolist() == [4.0, 4.0]
