"""Unit tests for data-parallel primitives."""

import numpy as np
import pytest

from repro.parallel.primitives import (
    balanced_chunks,
    chunk_ranges,
    exclusive_prefix_sum,
    histogram_by_key,
    inclusive_prefix_sum,
    parallel_filter,
)


class TestPrefixSums:
    def test_exclusive(self):
        assert exclusive_prefix_sum(np.array([3, 1, 4])).tolist() == [0, 3, 4]

    def test_inclusive(self):
        assert inclusive_prefix_sum(np.array([3, 1, 4])).tolist() == [3, 4, 8]

    def test_empty(self):
        assert exclusive_prefix_sum(np.array([], dtype=np.int64)).tolist() == []
        assert inclusive_prefix_sum(np.array([], dtype=np.int64)).tolist() == []

    def test_exclusive_then_diff_roundtrip(self):
        values = np.array([5, 0, 2, 7])
        prefix = exclusive_prefix_sum(values)
        recovered = np.diff(np.append(prefix, values.sum()))
        assert np.array_equal(recovered, values)


class TestFilterAndHistogram:
    def test_parallel_filter(self):
        values = np.array([10, 20, 30, 40])
        kept = parallel_filter(values, np.array([True, False, True, False]))
        assert kept.tolist() == [10, 30]

    def test_histogram_unweighted(self):
        keys = np.array([0, 2, 2, 5])
        histogram = histogram_by_key(keys, minlength=7)
        assert histogram.tolist() == [1, 0, 2, 0, 0, 1, 0]

    def test_histogram_weighted(self):
        keys = np.array([1, 1, 3])
        weights = np.array([2.0, 3.0, 4.0])
        histogram = histogram_by_key(keys, weights, minlength=4)
        assert histogram.tolist() == [0, 5, 0, 4]

    def test_histogram_empty(self):
        assert histogram_by_key(np.array([], dtype=np.int64), minlength=3).tolist() == [0, 0, 0]


class TestChunking:
    def test_chunk_ranges_cover_everything(self):
        ranges = chunk_ranges(10, 3)
        covered = [i for start, stop in ranges for i in range(start, stop)]
        assert covered == list(range(10))

    def test_chunk_ranges_more_chunks_than_items(self):
        ranges = chunk_ranges(2, 8)
        assert len(ranges) == 2

    def test_chunk_ranges_zero_items(self):
        assert chunk_ranges(0, 4) == []

    def test_balanced_chunks_cover_everything(self):
        work = np.array([1, 1, 1, 100, 1, 1])
        chunks = balanced_chunks(work, 3)
        covered = sorted(int(i) for chunk in chunks for i in chunk)
        assert covered == list(range(6))

    def test_balanced_chunks_split_heavy_items_apart(self):
        work = np.array([100, 1, 1, 1, 1, 100])
        chunks = balanced_chunks(work, 2)
        loads = [int(work[chunk].sum()) for chunk in chunks]
        # The two heavy items must not end up in the same chunk.
        assert max(loads) < 204

    def test_balanced_chunks_zero_work(self):
        chunks = balanced_chunks(np.zeros(5, dtype=np.int64), 2)
        covered = sorted(int(i) for chunk in chunks for i in chunk)
        assert covered == list(range(5))

    def test_balanced_chunks_empty(self):
        assert balanced_chunks(np.array([], dtype=np.int64), 3) == []
