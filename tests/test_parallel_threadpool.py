"""Unit tests for the execution context (parallel-for and task queues)."""

import threading

import pytest

from repro.parallel.threadpool import ExecutionContext


class TestConstruction:
    def test_invalid_thread_count(self):
        with pytest.raises(ValueError):
            ExecutionContext(0)

    def test_context_manager_shuts_down(self):
        with ExecutionContext(2, use_real_threads=True) as context:
            context.run_tasks([lambda: 1])
        assert context._executor is None


class TestMapChunks:
    def test_results_cover_all_items(self):
        context = ExecutionContext(3)
        results = context.map_chunks(list(range(10)), lambda chunk: sum(chunk))
        assert sum(results) == sum(range(10))

    def test_empty_items(self):
        context = ExecutionContext(2)
        assert context.map_chunks([], lambda chunk: len(chunk)) == []
        assert context.synchronization_rounds == 1  # the barrier is still recorded

    def test_work_balanced_chunking(self):
        context = ExecutionContext(2)
        items = list(range(6))
        work = [100, 1, 1, 1, 1, 100]
        chunks_seen = context.map_chunks(items, lambda chunk: list(chunk), work_per_item=work)
        flattened = sorted(item for chunk in chunks_seen for item in chunk)
        assert flattened == items

    def test_real_threads_produce_same_results(self):
        serial = ExecutionContext(4, use_real_threads=False)
        threaded = ExecutionContext(4, use_real_threads=True)
        items = list(range(100))
        body = lambda chunk: sum(x * x for x in chunk)  # noqa: E731
        assert sum(serial.map_chunks(items, body)) == sum(threaded.map_chunks(items, body))
        threaded.shutdown()

    def test_records_region_metadata(self):
        context = ExecutionContext(2)
        context.map_chunks([1, 2, 3], lambda chunk: None, name="my_region",
                           work_per_item=[5.0, 5.0, 5.0])
        region = context.parallel_regions[-1]
        assert region.name == "my_region"
        assert region.n_tasks == 3
        assert region.total_work == 15.0
        assert region.task_work == [5.0, 5.0, 5.0]


class TestRunTasks:
    def test_serial_execution_order(self):
        context = ExecutionContext(1)
        log = []
        tasks = [lambda i=i: log.append(i) for i in range(5)]
        context.run_tasks(tasks)
        assert log == [0, 1, 2, 3, 4]

    def test_threaded_execution_completes_all(self):
        context = ExecutionContext(4, use_real_threads=True)
        lock = threading.Lock()
        seen = set()

        def make_task(i):
            def task():
                with lock:
                    seen.add(i)
                return i
            return task

        results = context.run_tasks([make_task(i) for i in range(20)])
        context.shutdown()
        assert sorted(results) == list(range(20))
        assert seen == set(range(20))

    def test_empty_task_list(self):
        context = ExecutionContext(2)
        assert context.run_tasks([]) == []


class TestAccounting:
    def test_barrier_counting(self):
        context = ExecutionContext(2)
        context.record_barrier("a")
        context.record_barrier("b", n_tasks=4, total_work=10.0)
        assert context.synchronization_rounds == 2
        assert [region.name for region in context.parallel_regions] == ["a", "b"]

    def test_each_parallel_for_counts_one_round(self):
        context = ExecutionContext(2)
        for _ in range(5):
            context.map_chunks([1, 2], lambda chunk: None)
        assert context.synchronization_rounds == 5
