"""Unit tests for sequential bottom-up peeling (BUP)."""

import numpy as np
import pytest

from repro.butterfly.counting import count_per_vertex_priority
from repro.errors import BudgetExceededError
from repro.graph.builders import complete_bipartite, empty_graph, from_edge_list, star
from repro.peeling.base import validate_result_against_definition
from repro.peeling.bup import bup_decomposition, peel_sequential


class TestClosedFormCases:
    def test_complete_bipartite_all_equal(self):
        # K_{4,3} is itself a 9-tip on the U side: every U vertex has
        # (4-1) * C(3,2) = 9 butterflies, so theta_u = 9 for everyone (the
        # max{theta, ...} clamp of Alg. 2 keeps tip numbers non-decreasing).
        graph = complete_bipartite(4, 3)
        result = bup_decomposition(graph, "U")
        assert set(result.tip_numbers.tolist()) == {9}

    def test_complete_bipartite_v_side(self):
        graph = complete_bipartite(4, 3)
        result = bup_decomposition(graph, "V")
        # Symmetric argument: theta_v = (3-1) * C(4,2) = 12 for every V vertex.
        assert set(result.tip_numbers.tolist()) == {12}

    def test_star_all_zero(self):
        result = bup_decomposition(star(6, center_side="V"), "U")
        assert result.tip_numbers.tolist() == [0] * 6
        assert result.max_tip_number == 0

    def test_empty_graph(self):
        result = bup_decomposition(empty_graph(4, 2), "U")
        assert result.tip_numbers.tolist() == [0] * 4

    def test_single_butterfly(self):
        graph = complete_bipartite(2, 2)
        result = bup_decomposition(graph, "U")
        assert result.tip_numbers.tolist() == [1, 1]

    def test_two_disjoint_butterflies(self):
        edges = [(0, 0), (0, 1), (1, 0), (1, 1), (2, 2), (2, 3), (3, 2), (3, 3)]
        graph = from_edge_list(edges, n_u=4, n_v=4)
        result = bup_decomposition(graph, "U")
        assert result.tip_numbers.tolist() == [1, 1, 1, 1]

    def test_nested_hierarchy_monotone(self, hierarchy_graph):
        # Later levels have strictly larger neighbourhoods and must not end
        # up with smaller tip numbers than earlier levels on average.
        result = bup_decomposition(hierarchy_graph, "U")
        assert result.max_tip_number > 0
        assert result.tip_numbers.max() > result.tip_numbers.min()


class TestResultStructure:
    def test_result_fields(self, blocks_graph):
        result = bup_decomposition(blocks_graph, "U")
        assert result.algorithm == "BUP"
        assert result.side == "U"
        assert result.n_vertices == blocks_graph.n_u
        assert result.counters.vertices_peeled == blocks_graph.n_u
        assert result.counters.wedges_traversed > 0
        assert result.counters.elapsed_seconds > 0
        validate_result_against_definition(blocks_graph, result)

    def test_tip_bounded_by_butterfly_count(self, blocks_graph, community_graph):
        for graph in (blocks_graph, community_graph):
            result = bup_decomposition(graph, "U")
            assert np.all(result.tip_numbers <= result.initial_butterflies)

    def test_precomputed_counts_reused(self, blocks_graph):
        counts = count_per_vertex_priority(blocks_graph)
        result = bup_decomposition(blocks_graph, "U", counts=counts)
        reference = bup_decomposition(blocks_graph, "U")
        assert np.array_equal(result.tip_numbers, reference.tip_numbers)

    def test_histogram_and_cumulative(self, blocks_graph):
        result = bup_decomposition(blocks_graph, "U")
        histogram = result.histogram()
        assert sum(histogram.values()) == blocks_graph.n_u
        values, fractions = result.cumulative_distribution()
        assert values.shape[0] == blocks_graph.n_u
        assert fractions[-1] == pytest.approx(1.0)

    def test_vertices_with_tip_at_least(self, blocks_graph):
        result = bup_decomposition(blocks_graph, "U")
        k = max(1, result.max_tip_number // 2)
        members = result.vertices_with_tip_at_least(k)
        assert np.all(result.tip_numbers[members] >= k)
        non_members = np.setdiff1d(np.arange(blocks_graph.n_u), members)
        assert np.all(result.tip_numbers[non_members] < k)

    def test_summary_contents(self, blocks_graph):
        summary = bup_decomposition(blocks_graph, "U").summary()
        assert summary["algorithm"] == "BUP"
        assert summary["n_vertices"] == blocks_graph.n_u
        assert "wedges_traversed" in summary


class TestSequentialPeelKernel:
    def test_peel_sequential_with_dgm_matches_without(self, blocks_graph):
        counts = count_per_vertex_priority(blocks_graph).u_counts
        with_dgm, _, _ = peel_sequential(blocks_graph, "U", counts, enable_dgm=True)
        without_dgm, _, _ = peel_sequential(blocks_graph, "U", counts, enable_dgm=False)
        assert np.array_equal(with_dgm, without_dgm)

    def test_peel_order_recorded(self, blocks_graph):
        counts = count_per_vertex_priority(blocks_graph).u_counts
        tips, _, order = peel_sequential(
            blocks_graph, "U", counts, record_peel_order=True
        )
        assert sorted(order) == list(range(blocks_graph.n_u))
        # Tip numbers along the peel order are non-decreasing (fundamental
        # property of bottom-up peeling).
        assert np.all(np.diff(tips[order]) >= 0)

    def test_wrong_support_length_rejected(self, blocks_graph):
        with pytest.raises(ValueError, match="entries"):
            peel_sequential(blocks_graph, "U", np.zeros(3))

    def test_wedge_budget_enforced(self, blocks_graph):
        counts = count_per_vertex_priority(blocks_graph).u_counts
        with pytest.raises(BudgetExceededError):
            peel_sequential(blocks_graph, "U", counts, wedge_budget=1)

    def test_budget_error_in_bup(self, blocks_graph):
        with pytest.raises(BudgetExceededError) as info:
            bup_decomposition(blocks_graph, "U", wedge_budget=1)
        assert info.value.wedges_traversed > 1


class TestSideSymmetry:
    def test_v_side_equals_swapped_u_side(self, blocks_graph):
        direct = bup_decomposition(blocks_graph, "V")
        swapped = bup_decomposition(blocks_graph.swap_sides(), "U")
        assert np.array_equal(direct.tip_numbers, swapped.tip_numbers)
