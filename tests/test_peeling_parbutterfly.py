"""Unit tests for the ParButterfly-style (ParB) baseline."""

import numpy as np
import pytest

from repro.errors import BudgetExceededError
from repro.graph.builders import complete_bipartite, empty_graph, star
from repro.parallel.threadpool import ExecutionContext
from repro.peeling.bup import bup_decomposition
from repro.peeling.parbutterfly import parbutterfly_decomposition


class TestCorrectness:
    def test_matches_bup_on_fixtures(self, tiny_graph, blocks_graph, community_graph,
                                     hierarchy_graph):
        for graph in (tiny_graph, blocks_graph, community_graph, hierarchy_graph):
            for side in ("U", "V"):
                reference = bup_decomposition(graph, side)
                parb = parbutterfly_decomposition(graph, side)
                assert np.array_equal(reference.tip_numbers, parb.tip_numbers), (graph.name, side)

    def test_complete_graph(self):
        result = parbutterfly_decomposition(complete_bipartite(4, 3), "U")
        assert set(result.tip_numbers.tolist()) == {9}

    def test_star_and_empty(self):
        assert parbutterfly_decomposition(star(5), "U").max_tip_number == 0
        assert parbutterfly_decomposition(empty_graph(3, 3), "U").tip_numbers.tolist() == [0, 0, 0]

    def test_bucket_count_does_not_change_result(self, blocks_graph):
        narrow = parbutterfly_decomposition(blocks_graph, "U", n_buckets=4)
        wide = parbutterfly_decomposition(blocks_graph, "U", n_buckets=256)
        assert np.array_equal(narrow.tip_numbers, wide.tip_numbers)


class TestRoundStructure:
    def test_rounds_bounded_by_vertices(self, blocks_graph):
        result = parbutterfly_decomposition(blocks_graph, "U")
        assert 0 < result.counters.synchronization_rounds <= blocks_graph.n_u

    def test_rounds_at_least_distinct_tip_values(self, blocks_graph):
        # Every distinct tip number needs at least one round that peels at
        # that support level.
        result = parbutterfly_decomposition(blocks_graph, "U")
        distinct = np.unique(result.tip_numbers).size
        assert result.counters.synchronization_rounds >= distinct

    def test_complete_graph_single_round(self):
        # All vertices share the minimum support, so one round peels them all.
        result = parbutterfly_decomposition(complete_bipartite(4, 4), "U")
        assert result.counters.synchronization_rounds == 1

    def test_wedges_match_bup(self, blocks_graph):
        # Without DGM both algorithms traverse every wedge of every peeled
        # vertex; the counting phase uses the same kernel.
        bup = bup_decomposition(blocks_graph, "U")
        parb = parbutterfly_decomposition(blocks_graph, "U")
        assert parb.counters.wedges_traversed == bup.counters.wedges_traversed

    def test_records_rounds_in_context(self, blocks_graph):
        context = ExecutionContext(4)
        parbutterfly_decomposition(blocks_graph, "U", context=context)
        round_regions = [r for r in context.parallel_regions if r.name == "parb_round"]
        assert len(round_regions) > 0


class TestBudgets:
    def test_wedge_budget(self, blocks_graph):
        with pytest.raises(BudgetExceededError):
            parbutterfly_decomposition(blocks_graph, "U", wedge_budget=1)

    def test_round_budget(self, blocks_graph):
        with pytest.raises(BudgetExceededError):
            parbutterfly_decomposition(blocks_graph, "U", round_budget=1)

    def test_budget_error_carries_progress(self, blocks_graph):
        try:
            parbutterfly_decomposition(blocks_graph, "U", round_budget=2)
        except BudgetExceededError as error:
            assert error.wedges_traversed > 0
        else:  # pragma: no cover
            pytest.fail("expected BudgetExceededError")


class TestMetadata:
    def test_result_fields(self, blocks_graph):
        result = parbutterfly_decomposition(blocks_graph, "U")
        assert result.algorithm == "ParB"
        assert result.extra["n_buckets"] == 128
        assert result.counters.vertices_peeled == blocks_graph.n_u
