"""Unit tests for the min-support retrieval structures (heap and buckets)."""

import numpy as np
import pytest

from repro.peeling.bucketing import BucketQueue
from repro.peeling.minheap import LazyMinHeap


class TestLazyMinHeap:
    def test_pop_order_without_updates(self):
        supports = np.array([5, 1, 3, 2, 4])
        heap = LazyMinHeap(supports)
        order = [heap.pop_min() for _ in range(5)]
        assert [vertex for vertex, _ in order] == [1, 3, 2, 4, 0]
        assert [support for _, support in order] == [1, 2, 3, 4, 5]

    def test_decrease_changes_priority(self):
        heap = LazyMinHeap(np.array([10, 20, 30]))
        heap.decrease(2, 5)
        vertex, support = heap.pop_min()
        assert (vertex, support) == (2, 5)

    def test_decrease_to_same_value_is_noop(self):
        heap = LazyMinHeap(np.array([4, 2]))
        pushes_before = heap.pushes
        heap.decrease(0, 4)
        assert heap.pushes == pushes_before

    def test_increase_rejected(self):
        heap = LazyMinHeap(np.array([4, 2]))
        with pytest.raises(ValueError):
            heap.decrease(1, 10)

    def test_decrease_after_pop_ignored(self):
        heap = LazyMinHeap(np.array([1, 2]))
        heap.pop_min()
        heap.decrease(0, 0)  # silently ignored
        vertex, _ = heap.pop_min()
        assert vertex == 1

    def test_contains_and_len(self):
        heap = LazyMinHeap(np.array([1, 2, 3]))
        assert len(heap) == 3
        assert 1 in heap
        heap.pop_min()
        assert 0 not in heap
        assert len(heap) == 2
        assert bool(heap)

    def test_empty_pop_raises(self):
        heap = LazyMinHeap(np.array([], dtype=np.int64))
        assert not heap
        with pytest.raises(IndexError):
            heap.pop_min()

    def test_peek_min_support(self):
        heap = LazyMinHeap(np.array([7, 3, 9]))
        assert heap.peek_min_support() == 3
        heap.decrease(2, 1)
        assert heap.peek_min_support() == 1

    def test_pop_all_min(self):
        heap = LazyMinHeap(np.array([2, 2, 5, 2]))
        vertices, support = heap.pop_all_min()
        assert support == 2
        assert sorted(vertices) == [0, 1, 3]
        assert len(heap) == 1

    def test_vertex_subset(self):
        supports = np.array([9, 1, 8, 2])
        heap = LazyMinHeap(supports, vertices=[0, 2])
        assert len(heap) == 2
        vertex, support = heap.pop_min()
        assert (vertex, support) == (2, 8)

    def test_many_random_operations_match_reference(self):
        rng = np.random.default_rng(11)
        supports = rng.integers(0, 100, size=50)
        heap = LazyMinHeap(supports)
        current = {i: int(s) for i, s in enumerate(supports)}
        popped = []
        while heap:
            # Randomly decrease a few surviving vertices (never below the
            # current minimum, as in real peeling).
            minimum = min(current.values())
            for vertex in rng.choice(list(current), size=min(3, len(current)), replace=False):
                new_value = int(rng.integers(minimum, current[vertex] + 1))
                heap.decrease(int(vertex), new_value)
                current[int(vertex)] = new_value
            vertex, support = heap.pop_min()
            assert support == min(current.values())
            assert current[vertex] == support
            del current[vertex]
            popped.append(support)
        assert popped == sorted(popped)


class TestBucketQueue:
    def test_extracts_minimum_bucket(self):
        buckets = BucketQueue(np.array([4, 1, 1, 3]))
        vertices, level = buckets.next_bucket()
        assert level == 1
        assert sorted(vertices) == [1, 2]

    def test_update_moves_vertex(self):
        buckets = BucketQueue(np.array([5, 9]))
        buckets.update(1, 2)
        vertices, level = buckets.next_bucket()
        assert vertices == [1]
        assert level == 2

    def test_update_increase_rejected(self):
        buckets = BucketQueue(np.array([5, 9]))
        with pytest.raises(ValueError):
            buckets.update(0, 6)

    def test_overflow_rebucketing(self):
        # Values far beyond the initial window force a re-bucketing pass.
        supports = np.array([1, 2, 500, 1000])
        buckets = BucketQueue(supports, n_buckets=4, bucket_width=1)
        order = []
        while buckets:
            vertices, level = buckets.next_bucket()
            order.extend((vertex, level) for vertex in vertices)
        assert [level for _, level in order] == [1, 2, 500, 1000]
        assert buckets.rebuckets >= 1

    def test_bucket_width_groups_ranges(self):
        supports = np.array([0, 1, 2, 3, 4, 5])
        buckets = BucketQueue(supports, n_buckets=2, bucket_width=3)
        vertices, level = buckets.next_bucket()
        assert sorted(vertices) == [0, 1, 2]
        assert level == 0
        vertices, level = buckets.next_bucket()
        assert sorted(vertices) == [3, 4, 5]

    def test_empty_raises(self):
        buckets = BucketQueue(np.array([1]))
        buckets.next_bucket()
        assert not buckets
        with pytest.raises(IndexError):
            buckets.next_bucket()

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BucketQueue(np.array([1]), n_buckets=0)
        with pytest.raises(ValueError):
            BucketQueue(np.array([1]), bucket_width=0)

    def test_full_drain_is_sorted_by_support(self):
        rng = np.random.default_rng(5)
        supports = rng.integers(0, 1000, size=100)
        buckets = BucketQueue(supports, n_buckets=16)
        drained_levels = []
        while buckets:
            vertices, level = buckets.next_bucket()
            for vertex in vertices:
                assert supports[vertex] == level
            drained_levels.append(level)
        assert drained_levels == sorted(drained_levels)
        assert sum(1 for _ in drained_levels) == len(set(supports.tolist()))

    def test_current_support_tracking(self):
        buckets = BucketQueue(np.array([5, 7]))
        assert buckets.current_support(0) == 5
        buckets.update(0, 3)
        assert buckets.current_support(0) == 3

    def test_update_after_extraction_ignored(self):
        buckets = BucketQueue(np.array([1, 5]))
        buckets.next_bucket()
        buckets.update(0, 0)  # vertex already extracted; must not crash
        vertices, _ = buckets.next_bucket()
        assert vertices == [1]
