"""Unit tests for the shared support-update (peel) routine."""

import numpy as np

from repro.butterfly.counting import count_per_vertex_priority
from repro.butterfly.wedges import shared_butterflies
from repro.graph.builders import complete_bipartite
from repro.graph.dynamic import PeelableAdjacency
from repro.peeling.update import peel_batch, peel_vertex


def _setup(graph, side="U", enable_dgm=False):
    counts = count_per_vertex_priority(graph)
    supports = counts.counts(side).copy()
    adjacency = PeelableAdjacency(graph, side, enable_dgm=enable_dgm)
    return supports, adjacency


class TestPeelVertex:
    def test_decrements_by_shared_butterflies(self, tiny_graph):
        supports, adjacency = _setup(tiny_graph)
        before = supports.copy()
        vertex = 2
        adjacency.mark_peeled(vertex)
        update = peel_vertex(adjacency, supports, vertex, threshold=0)
        for other in range(tiny_graph.n_u):
            if other == vertex:
                continue
            expected = max(0, before[other] - shared_butterflies(tiny_graph, vertex, other))
            assert supports[other] == expected
        assert update.wedges_traversed == sum(
            tiny_graph.degree_v(int(v)) for v in tiny_graph.neighbors_u(vertex)
        )

    def test_threshold_clamps_supports(self, complete_4x3):
        supports, adjacency = _setup(complete_4x3)
        threshold = int(supports[1]) - 1
        adjacency.mark_peeled(0)
        peel_vertex(adjacency, supports, 0, threshold=threshold)
        assert np.all(supports[1:] >= threshold)

    def test_updates_skip_peeled_vertices(self, complete_4x3):
        supports, adjacency = _setup(complete_4x3)
        adjacency.mark_peeled(1)
        frozen = int(supports[1])
        adjacency.mark_peeled(0)
        update = peel_vertex(adjacency, supports, 0, threshold=0)
        assert supports[1] == frozen
        assert 1 not in update.updated_vertices.tolist()

    def test_isolated_vertex_no_updates(self):
        from repro.graph.bipartite import BipartiteGraph

        graph = BipartiteGraph(3, 2, [(0, 0), (0, 1), (1, 0), (1, 1)])
        supports, adjacency = _setup(graph)
        adjacency.mark_peeled(2)
        update = peel_vertex(adjacency, supports, 2, threshold=0)
        assert update.wedges_traversed == 0
        assert update.support_updates == 0

    def test_vertices_without_shared_butterflies_untouched(self):
        from repro.graph.builders import from_edge_list

        # u0 and u1 share one neighbour (a wedge but no butterfly).
        graph = from_edge_list([(0, 0), (1, 0), (1, 1), (2, 1), (2, 2)], n_u=3, n_v=3)
        supports, adjacency = _setup(graph)
        adjacency.mark_peeled(0)
        update = peel_vertex(adjacency, supports, 0, threshold=0)
        assert update.support_updates == 0

    def test_returns_new_support_values(self, complete_4x3):
        supports, adjacency = _setup(complete_4x3)
        adjacency.mark_peeled(0)
        update = peel_vertex(adjacency, supports, 0, threshold=0)
        for vertex, new_support in zip(update.updated_vertices, update.new_supports):
            assert supports[vertex] == new_support


class TestPeelBatch:
    def test_batch_equivalent_to_sequential_updates(self, blocks_graph):
        # Peeling a batch must decrement every surviving vertex by the sum of
        # butterflies it shares with batch members (Lemma 2).
        supports, adjacency = _setup(blocks_graph)
        before = supports.copy()
        batch = np.array([0, 1, 2, 3, 4])
        peel_batch(adjacency, supports, batch, threshold=0)
        batch_set = set(batch.tolist())
        for vertex in range(blocks_graph.n_u):
            if vertex in batch_set:
                continue
            shared_total = sum(
                shared_butterflies(blocks_graph, vertex, member) for member in batch
            )
            assert supports[vertex] == max(0, before[vertex] - shared_total)

    def test_batch_members_marked_peeled(self, blocks_graph):
        supports, adjacency = _setup(blocks_graph)
        batch = np.array([5, 6, 7])
        peel_batch(adjacency, supports, batch, threshold=0)
        for member in batch:
            assert not adjacency.is_alive(int(member))

    def test_batch_does_not_update_its_own_members(self, complete_4x3):
        supports, adjacency = _setup(complete_4x3)
        before = supports.copy()
        batch = np.array([0, 1])
        update = peel_batch(adjacency, supports, batch, threshold=0)
        assert set(update.updated_vertices.tolist()).isdisjoint({0, 1})
        # Member supports are untouched (their values are frozen at peel time).
        assert supports[0] == before[0]
        assert supports[1] == before[1]

    def test_empty_batch(self, blocks_graph):
        supports, adjacency = _setup(blocks_graph)
        update = peel_batch(adjacency, supports, np.array([], dtype=np.int64), threshold=0)
        assert update.wedges_traversed == 0
        assert update.support_updates == 0

    def test_wedge_accounting_accumulates(self, complete_4x3):
        supports, adjacency = _setup(complete_4x3)
        update = peel_batch(adjacency, supports, np.array([0, 1]), threshold=0)
        # Each peel traverses |N(u)| * |U| = 3 * 4 = 12 stale-inclusive wedges
        # (no compaction yet), so two peels traverse 24.
        assert update.wedges_traversed == 24

    def test_dgm_reduces_traversal_within_batch(self, complete_4x3):
        supports, adjacency = _setup(complete_4x3, enable_dgm=True)
        adjacency.compaction_interval = 1  # compact aggressively
        update = peel_batch(adjacency, supports, np.array([0, 1, 2]), threshold=0)
        supports_no_dgm, adjacency_no_dgm = _setup(complete_4x3, enable_dgm=False)
        update_no_dgm = peel_batch(
            adjacency_no_dgm, supports_no_dgm, np.array([0, 1, 2]), threshold=0
        )
        assert update.wedges_traversed < update_no_dgm.wedges_traversed
        # Final supports are identical regardless of DGM.
        assert np.array_equal(supports, supports_no_dgm)
