"""Property-based tests (hypothesis) for core invariants.

These encode the paper's structural guarantees as properties over random
bipartite graphs: counting identities, the equivalence of every
decomposition algorithm, the CD range theorems, and monotonicity of
butterfly counts under edge addition.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.butterfly.counting import count_per_vertex_priority
from repro.butterfly.naive import count_butterflies_exhaustive
from repro.core.cd import coarse_grained_decomposition
from repro.core.receipt import receipt_decomposition
from repro.graph.bipartite import BipartiteGraph
from repro.peeling.bup import bup_decomposition
from repro.peeling.parbutterfly import parbutterfly_decomposition


@st.composite
def bipartite_graphs(draw, max_u=12, max_v=12, max_edges=60):
    """Strategy producing small random bipartite graphs (possibly empty)."""
    n_u = draw(st.integers(min_value=1, max_value=max_u))
    n_v = draw(st.integers(min_value=1, max_value=max_v))
    possible = [(u, v) for u in range(n_u) for v in range(n_v)]
    n_edges = draw(st.integers(min_value=0, max_value=min(max_edges, len(possible))))
    indices = draw(
        st.lists(st.integers(min_value=0, max_value=len(possible) - 1),
                 min_size=n_edges, max_size=n_edges, unique=True)
    )
    edges = [possible[i] for i in indices]
    return BipartiteGraph(n_u, n_v, edges)


@settings(max_examples=40, deadline=None)
@given(graph=bipartite_graphs())
def test_counting_matches_exhaustive_enumeration(graph):
    counts = count_per_vertex_priority(graph)
    u_expected, v_expected, total = count_butterflies_exhaustive(graph)
    assert np.array_equal(counts.u_counts, u_expected)
    assert np.array_equal(counts.v_counts, v_expected)
    assert counts.total_butterflies == total


@settings(max_examples=40, deadline=None)
@given(graph=bipartite_graphs())
def test_side_count_sums_are_equal(graph):
    counts = count_per_vertex_priority(graph)
    assert counts.u_counts.sum() == counts.v_counts.sum()
    assert counts.u_counts.sum() % 2 == 0


@settings(max_examples=25, deadline=None)
@given(graph=bipartite_graphs(), n_partitions=st.integers(min_value=1, max_value=6))
def test_receipt_equals_bup(graph, n_partitions):
    reference = bup_decomposition(graph, "U")
    receipt = receipt_decomposition(graph, "U", n_partitions=n_partitions)
    assert np.array_equal(reference.tip_numbers, receipt.tip_numbers)


@settings(max_examples=20, deadline=None)
@given(graph=bipartite_graphs())
def test_parb_equals_bup_on_both_sides(graph):
    for side in ("U", "V"):
        reference = bup_decomposition(graph, side)
        parb = parbutterfly_decomposition(graph, side)
        assert np.array_equal(reference.tip_numbers, parb.tip_numbers)


@settings(max_examples=30, deadline=None)
@given(graph=bipartite_graphs())
def test_tip_numbers_bounded_by_butterfly_counts(graph):
    result = bup_decomposition(graph, "U")
    assert np.all(result.tip_numbers >= 0)
    assert np.all(result.tip_numbers <= result.initial_butterflies)


@settings(max_examples=25, deadline=None)
@given(graph=bipartite_graphs(), n_partitions=st.integers(min_value=1, max_value=5))
def test_cd_ranges_contain_their_tip_numbers(graph, n_partitions):
    counts = count_per_vertex_priority(graph).u_counts
    cd = coarse_grained_decomposition(graph, counts, n_partitions)
    reference = bup_decomposition(graph, "U").tip_numbers
    assigned = np.concatenate(cd.subsets) if cd.subsets else np.zeros(0, dtype=np.int64)
    assert sorted(assigned.tolist()) == list(range(graph.n_u))
    for index, subset in enumerate(cd.subsets):
        lower, upper = cd.range_of_subset(index)
        assert np.all(reference[subset] >= lower)
        assert np.all(reference[subset] < upper)


@settings(max_examples=25, deadline=None)
@given(graph=bipartite_graphs(max_u=8, max_v=8, max_edges=30),
       extra_u=st.integers(min_value=0, max_value=7),
       extra_v=st.integers(min_value=0, max_value=7))
def test_adding_an_edge_never_decreases_butterfly_counts(graph, extra_u, extra_v):
    u = extra_u % graph.n_u
    v = extra_v % graph.n_v
    if graph.has_edge(u, v):
        return
    before = count_per_vertex_priority(graph)
    augmented = BipartiteGraph(
        graph.n_u, graph.n_v, list(graph.edges()) + [(u, v)]
    )
    after = count_per_vertex_priority(augmented)
    assert np.all(after.u_counts >= before.u_counts)
    assert np.all(after.v_counts >= before.v_counts)


@settings(max_examples=25, deadline=None)
@given(graph=bipartite_graphs())
def test_swap_sides_transposes_counts_and_tips(graph):
    counts = count_per_vertex_priority(graph)
    swapped_counts = count_per_vertex_priority(graph.swap_sides())
    assert np.array_equal(counts.u_counts, swapped_counts.v_counts)
    assert np.array_equal(counts.v_counts, swapped_counts.u_counts)
    tips_v = bup_decomposition(graph, "V").tip_numbers
    tips_swapped_u = bup_decomposition(graph.swap_sides(), "U").tip_numbers
    assert np.array_equal(tips_v, tips_swapped_u)


@settings(max_examples=20, deadline=None)
@given(graph=bipartite_graphs(max_u=10, max_v=10, max_edges=40))
def test_induced_subgraph_counts_never_exceed_parent(graph):
    subset = np.arange(0, graph.n_u, 2)
    induced = graph.induced_on_u_subset(subset)
    parent_counts = count_per_vertex_priority(graph).u_counts
    induced_counts = count_per_vertex_priority(induced.graph).u_counts
    for new_id, old_id in enumerate(subset):
        assert induced_counts[new_id] <= parent_counts[old_id]
