"""Artifact round-trip tests: persistence of decomposition results.

The acceptance contract of the serving layer is that an artifact is a
*lossless* record of the decomposition it was built from: tip numbers,
initial butterfly counts and every work counter must round-trip
bit-identically regardless of which peel kernel or execution backend
produced them.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.receipt import tip_decomposition
from repro.errors import ArtifactError, ArtifactMismatchError
from repro.graph.builders import from_edge_list
from repro.service.artifacts import (
    ARTIFACT_FORMAT_VERSION,
    MANIFEST_FILENAME,
    TipArtifact,
    graph_fingerprint,
    load_artifact,
    read_manifest,
    save_artifact,
)
from repro.service.build import build_index_artifact
from repro.service.index import TipIndex


@pytest.fixture
def graph(blocks_graph):
    return blocks_graph


def _decompose(graph, *, peel_kernel="batched", backend="serial"):
    return tip_decomposition(
        graph, "U", algorithm="receipt", peel_kernel=peel_kernel,
        backend=backend, n_threads=2 if backend != "serial" else 1, n_partitions=4,
    )


class TestRoundTrip:
    @pytest.mark.parametrize("peel_kernel", ["batched", "reference"])
    @pytest.mark.parametrize("backend", ["serial", "process"])
    def test_bit_identical_across_kernels_and_backends(
        self, graph, tmp_path, peel_kernel, backend
    ):
        result = _decompose(graph, peel_kernel=peel_kernel, backend=backend)
        path = tmp_path / f"{peel_kernel}-{backend}.tipidx"
        save_artifact(path, graph, result)

        loaded = load_artifact(path).to_result()
        assert np.array_equal(loaded.tip_numbers, result.tip_numbers)
        assert np.array_equal(loaded.initial_butterflies, result.initial_butterflies)
        assert loaded.counters.as_dict() == result.counters.as_dict()
        assert loaded.algorithm == result.algorithm
        assert loaded.side == result.side
        # Per-phase counters survive too.
        assert set(loaded.phase_counters) == set(result.phase_counters)
        for phase, counters in result.phase_counters.items():
            assert loaded.phase_counters[phase].as_dict() == counters.as_dict()

    def test_mmap_and_eager_loads_agree(self, graph, tmp_path):
        result = _decompose(graph)
        path = tmp_path / "idx.tipidx"
        save_artifact(path, graph, result)

        mapped = load_artifact(path, mmap=True)
        eager = load_artifact(path, mmap=False)
        assert mapped.mmapped and not eager.mmapped
        assert set(mapped.arrays) == set(eager.arrays)
        for key in mapped.arrays:
            assert np.array_equal(mapped.arrays[key], eager.arrays[key]), key
        # mmap really maps: the big arrays come back as np.memmap views.
        assert isinstance(mapped.arrays["tip_numbers"], np.memmap)

    def test_index_from_artifact_matches_fresh_index(self, graph, tmp_path):
        result = _decompose(graph)
        path = tmp_path / "idx.tipidx"
        save_artifact(path, graph, result)

        fresh = TipIndex.from_result(result, graph=graph)
        loaded = TipIndex.from_artifact(load_artifact(path))
        assert np.array_equal(fresh.order, loaded.order)
        assert np.array_equal(fresh.level_values, loaded.level_values)
        assert np.array_equal(fresh.level_offsets, loaded.level_offsets)
        assert fresh.histogram() == loaded.histogram()
        assert loaded.graph == graph

    def test_build_index_artifact_records_config(self, graph, tmp_path):
        path = tmp_path / "built.tipidx"
        manifest = build_index_artifact(
            graph, path, side="U", peel_kernel="reference", backend="serial",
            n_partitions=4,
        )
        assert manifest.decomposition["peel_kernel"] == "reference"
        assert manifest.decomposition["backend"] == "serial"
        assert manifest.decomposition["n_partitions"] == 4
        assert manifest.graph["fingerprint"] == graph_fingerprint(graph)
        # The on-disk manifest equals the returned one.
        assert read_manifest(path).as_dict() == manifest.as_dict()

    def test_unspecified_partitions_keep_resolved_value(self, graph, tmp_path):
        # build_index_artifact(n_partitions=None) must not clobber the
        # partition count the decomposition actually resolved to.
        manifest = build_index_artifact(graph, tmp_path / "default.tipidx", side="U")
        assert manifest.decomposition["n_partitions"] is not None
        assert manifest.decomposition["n_partitions"] > 0

    def test_artifact_is_readable_with_default_umask(self, graph, tmp_path):
        result = _decompose(graph)
        path = tmp_path / "perm.tipidx"
        save_artifact(path, graph, result)
        mode = path.stat().st_mode & 0o777
        # mkdtemp alone would leave 0o700; the save must honour the umask
        # so another account can serve the artifact.
        import os
        umask = os.umask(0)
        os.umask(umask)
        assert mode == (0o777 & ~umask)


class TestValidation:
    def test_existing_path_requires_overwrite(self, graph, tmp_path):
        result = _decompose(graph)
        path = tmp_path / "idx.tipidx"
        save_artifact(path, graph, result)
        with pytest.raises(ArtifactError, match="already exists"):
            save_artifact(path, graph, result)
        save_artifact(path, graph, result, overwrite=True)  # replaces atomically
        assert load_artifact(path).manifest.graph["n_u"] == graph.n_u

    def test_result_graph_size_mismatch_rejected(self, graph, tmp_path):
        result = _decompose(graph)
        other = from_edge_list([(0, 0), (1, 1)], n_u=2, n_v=2)
        with pytest.raises(ArtifactError, match="tip numbers"):
            save_artifact(tmp_path / "bad.tipidx", other, result)

    def test_graph_fingerprint_mismatch_raises(self, graph, tmp_path):
        result = _decompose(graph)
        path = tmp_path / "idx.tipidx"
        save_artifact(path, graph, result)
        other = from_edge_list([(0, 0), (0, 1), (1, 0)], n_u=2, n_v=2)
        with pytest.raises(ArtifactMismatchError, match="different graph"):
            load_artifact(path, expected_graph=other)
        # The graph it was built for loads fine.
        load_artifact(path, expected_graph=graph)

    def test_manifest_fingerprint_mismatch_raises(self, graph, tmp_path):
        result = _decompose(graph)
        path = tmp_path / "idx.tipidx"
        save_artifact(path, graph, result)
        with pytest.raises(ArtifactMismatchError, match="fingerprint"):
            load_artifact(path, expected_fingerprint="0" * 64)

    def test_missing_artifact_raises_clear_error(self, tmp_path):
        with pytest.raises(ArtifactError, match="no artifact"):
            read_manifest(tmp_path / "nope.tipidx")

    def test_corrupt_manifest_raises(self, graph, tmp_path):
        result = _decompose(graph)
        path = tmp_path / "idx.tipidx"
        save_artifact(path, graph, result)
        (path / MANIFEST_FILENAME).write_text("{not json", encoding="utf-8")
        with pytest.raises(ArtifactError, match="cannot read artifact manifest"):
            load_artifact(path)

    def test_future_format_version_rejected(self, graph, tmp_path):
        result = _decompose(graph)
        path = tmp_path / "idx.tipidx"
        save_artifact(path, graph, result)
        payload = json.loads((path / MANIFEST_FILENAME).read_text())
        payload["format_version"] = ARTIFACT_FORMAT_VERSION + 1
        (path / MANIFEST_FILENAME).write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(ArtifactError, match="format version"):
            load_artifact(path)

    def test_no_stale_temp_dirs_after_save(self, graph, tmp_path):
        result = _decompose(graph)
        save_artifact(tmp_path / "a.tipidx", graph, result)
        save_artifact(tmp_path / "a.tipidx", graph, result, overwrite=True)
        leftovers = [p for p in tmp_path.iterdir() if p.name != "a.tipidx"]
        assert leftovers == []


class TestEmptyGraph:
    def test_empty_side_round_trips(self, empty, tmp_path):
        result = tip_decomposition(empty, "U", algorithm="bup")
        path = tmp_path / "empty.tipidx"
        save_artifact(path, empty, result)
        artifact = load_artifact(path)
        index = TipIndex.from_artifact(artifact)
        assert index.n_vertices == empty.n_u
        assert index.max_tip_number == 0
        assert index.k_tip_members(1).size == 0

    def test_to_result_is_reconstructible(self, graph, tmp_path):
        result = _decompose(graph)
        path = tmp_path / "idx.tipidx"
        save_artifact(path, graph, result)
        artifact = load_artifact(path)
        assert isinstance(artifact, TipArtifact)
        rebuilt = artifact.to_result()
        assert rebuilt.summary()["max_tip_number"] == result.summary()["max_tip_number"]
