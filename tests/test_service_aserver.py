"""Async front-end tests: byte parity, keep-alive, pipelining, admission.

The async transport must be indistinguishable from the threaded one at
the byte level (same JSON, same status codes, same error text) while
adding the things the threaded transport can't do: persistent pipelined
connections, NDJSON bulk lookups, and admission-controlled updates.
"""

from __future__ import annotations

import http.client
import json
import shutil
import socket
import threading
import time

import pytest

from repro.core.receipt import tip_decomposition
from repro.datasets.generators import planted_blocks
from repro.service.artifacts import save_artifact
from repro.service.aserver import start_server_thread
from repro.service.server import TipService, create_server, to_jsonable

N_U = 40


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    graph = planted_blocks(N_U, 25, [(8, 6), (6, 4)], background_edges=50, seed=3)
    result = tip_decomposition(graph, "U", algorithm="receipt", n_partitions=4)
    path = tmp_path_factory.mktemp("aserve") / "blocks.tipidx"
    save_artifact(path, graph, result)
    return path, graph, result


@pytest.fixture(scope="module")
def async_server(artifact):
    path, _, _ = artifact
    handle = start_server_thread([path])
    yield handle
    handle.stop()


@pytest.fixture(scope="module")
def threaded_server(artifact):
    path, _, _ = artifact
    httpd = create_server([path], port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    host, port = httpd.server_address[0], httpd.server_address[1]
    yield host, port
    httpd.shutdown()
    httpd.server_close()


def _raw_request(host, port, method, target, body=None, content_type=None):
    """One request over a fresh connection: (status, headers, raw body bytes)."""
    connection = http.client.HTTPConnection(host, port, timeout=10)
    try:
        headers = {}
        if content_type:
            headers["Content-Type"] = content_type
        connection.request(method, target, body=body, headers=headers)
        response = connection.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        connection.close()


class TestTransportParity:
    ROUTES = [
        ("GET", "/healthz", None, None),
        ("GET", "/theta?vertex=7", None, None),
        ("GET", "/theta?vertex=0", None, None),
        ("GET", "/theta?vertex=100000", None, None),   # 400: out of range
        ("GET", "/theta?vertex=abc", None, None),      # 400: not an integer
        ("GET", "/theta", None, None),                 # 400: missing param
        ("GET", "/theta?vertex=1&artifact=ghost", None, None),  # 404
        ("GET", "/theta/batch?vertices=0,3,9,21", None, None),
        ("GET", "/top-k?k=5", None, None),
        ("GET", "/k-tip?k=1&limit=3", None, None),
        ("GET", "/community?k=75", None, None),
        ("GET", "/not-an-endpoint", None, None),       # 404
        ("POST", "/theta/batch", b'{"vertices": [1, 2, 3]}', "application/json"),
        ("POST", "/theta/batch", b"{broken", "application/json"),  # 400
        ("POST", "/theta/batch", b'["not", "an", "object"]', "application/json"),
    ]

    def test_every_route_is_byte_identical_across_transports(
            self, async_server, threaded_server):
        ahost, aport = async_server.address
        thost, tport = threaded_server
        for method, target, body, content_type in self.ROUTES:
            t_status, _, t_body = _raw_request(
                thost, tport, method, target, body, content_type)
            a_status, _, a_body = _raw_request(
                ahost, aport, method, target, body, content_type)
            assert a_status == t_status, (method, target)
            assert a_body == t_body, (method, target)

    def test_point_theta_matches_ground_truth(self, async_server, artifact):
        _, _, result = artifact
        host, port = async_server.address
        status, _, body = _raw_request(host, port, "GET", "/theta?vertex=7")
        assert status == 200
        assert json.loads(body) == {"vertex": 7, "theta": int(result.tip_numbers[7])}

    def test_structured_400_body_on_malformed_json(self, async_server):
        host, port = async_server.address
        status, _, body = _raw_request(
            host, port, "POST", "/theta/batch", b"{broken", "application/json")
        assert status == 400
        payload = json.loads(body)
        assert payload["status"] == 400
        assert "not valid JSON" in payload["error"]


class TestPersistentConnections:
    def test_keep_alive_reuses_one_connection(self, async_server):
        host, port = async_server.address
        connection = http.client.HTTPConnection(host, port, timeout=10)
        try:
            bodies = []
            for vertex in (1, 2, 3):
                connection.request("GET", f"/theta?vertex={vertex}")
                response = connection.getresponse()
                assert response.version == 11
                assert response.getheader("Connection") != "close"
                bodies.append(json.loads(response.read()))
            assert [b["vertex"] for b in bodies] == [1, 2, 3]
        finally:
            connection.close()

    def test_http_10_client_gets_connection_closed(self, async_server):
        host, port = async_server.address
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.sendall(b"GET /healthz HTTP/1.0\r\n\r\n")
            raw = b""
            sock.settimeout(10)
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                raw += chunk
        head, _, body = raw.partition(b"\r\n\r\n")
        assert b"200 OK" in head.split(b"\r\n", 1)[0]
        assert b"Connection: close" in head
        assert json.loads(body)["status"] == "ok"

    def test_pipelined_burst_answers_in_order_and_coalesces(self, artifact):
        path, _, result = artifact
        handle = start_server_thread([path])
        try:
            host, port = handle.address
            vertices = [5, 11, 0, 17, 8, 23]
            burst = b"".join(
                f"GET /theta?vertex={v} HTTP/1.1\r\nHost: x\r\n\r\n".encode()
                for v in vertices)
            with socket.create_connection((host, port), timeout=10) as sock:
                sock.sendall(burst)
                reader = _ResponseReader(sock)
                payloads = [reader.read_response()[1] for _ in vertices]
            assert [json.loads(p)["vertex"] for p in payloads] == vertices
            assert [json.loads(p)["theta"] for p in payloads] == [
                int(result.tip_numbers[v]) for v in vertices]
            metrics = handle.server.coalescer.metrics()
            # The whole burst arrives in one read: one flush, one gather.
            assert metrics["largest_batch"] == len(vertices)
            assert metrics["requests_coalesced"] == len(vertices)
        finally:
            handle.stop()


class _ResponseReader:
    """Parse HTTP/1.1 responses off a raw socket, buffering across reads.

    Pipelined responses arrive batched in a single ``recv``; the buffer
    carries the tail of one read into the next response.
    """

    def __init__(self, sock):
        self._sock = sock
        self._buffer = b""

    def _fill(self):
        chunk = self._sock.recv(65536)
        if not chunk:
            raise ConnectionError("peer closed mid-response")
        self._buffer += chunk

    def read_response(self):
        while b"\r\n\r\n" not in self._buffer:
            self._fill()
        head, _, self._buffer = self._buffer.partition(b"\r\n\r\n")
        status_line = head.split(b"\r\n", 1)[0].decode()
        length = None
        for line in head.split(b"\r\n")[1:]:
            name, _, value = line.decode().partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        assert length is not None, "every response must carry Content-Length"
        while len(self._buffer) < length:
            self._fill()
        body, self._buffer = self._buffer[:length], self._buffer[length:]
        return status_line, body


class TestNdjsonBulk:
    def test_bulk_lines_match_individual_batches(self, async_server, artifact):
        path, _, _ = artifact
        host, port = async_server.address
        lines = b'{"vertices": [0, 1, 2]}\n[3, 4]\n{"vertices": [100000]}\n'
        status, headers, body = _raw_request(
            host, port, "POST", "/theta/batch", lines, "application/x-ndjson")
        assert status == 200
        assert headers.get("Content-Type") == "application/x-ndjson"
        answers = [json.loads(line) for line in body.strip().split(b"\n")]
        offline = TipService([path])
        assert answers[0] == json.loads(json.dumps(to_jsonable(
            offline.handle("/theta/batch", {}, {"vertices": [0, 1, 2]}))))
        assert answers[1]["thetas"] == json.loads(json.dumps(to_jsonable(
            offline.handle("/theta/batch", {}, {"vertices": [3, 4]}))))["thetas"]
        assert answers[2]["status"] == 400
        assert "out of range" in answers[2]["error"]

    def test_invalid_lines_answer_in_band(self, async_server):
        host, port = async_server.address
        lines = b'{broken\n"a string"\n{"vertices": [1]}\n'
        status, _, body = _raw_request(
            host, port, "POST", "/theta/batch", lines, "application/x-ndjson")
        assert status == 200
        answers = [json.loads(line) for line in body.strip().split(b"\n")]
        assert "not valid JSON" in answers[0]["error"]
        assert "object or array" in answers[1]["error"]
        assert answers[2]["thetas"]

    def test_empty_body_is_400(self, async_server):
        host, port = async_server.address
        status, _, body = _raw_request(
            host, port, "POST", "/theta/batch", b"", "application/x-ndjson")
        assert status == 400
        assert "no request lines" in json.loads(body)["error"]


class TestProtocolEdges:
    def test_unsupported_method_405(self, async_server):
        host, port = async_server.address
        status, _, body = _raw_request(host, port, "DELETE", "/healthz")
        assert status == 405
        assert "GET or POST" in json.loads(body)["error"]

    def test_oversized_body_413_and_close(self, async_server):
        host, port = async_server.address
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.sendall(
                b"POST /theta/batch HTTP/1.1\r\nHost: x\r\n"
                b"Content-Length: 67108864\r\n\r\n")
            status_line, body = _ResponseReader(sock).read_response()
            assert " 413 " in status_line
            assert json.loads(body)["status"] == 413
            # The unread body desyncs the stream; the server must close.
            sock.settimeout(10)
            assert sock.recv(1) == b""

    def test_garbage_request_line_is_answered_not_fatal(self, async_server):
        host, port = async_server.address
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.sendall(b"NOT A REQUEST\r\n\r\n")
            status_line, _ = _ResponseReader(sock).read_response()
            assert " 400 " in status_line
        # The server survives: a normal request still works.
        status, _, _ = _raw_request(host, port, "GET", "/healthz")
        assert status == 200


class TestStatsAndMetrics:
    def test_stats_exposes_transport_metrics(self, async_server):
        host, port = async_server.address
        _raw_request(host, port, "GET", "/theta?vertex=1")
        status, _, body = _raw_request(host, port, "GET", "/stats?fresh=1")
        assert status == 200
        transport = json.loads(body)["transport"]
        assert transport["coalescer"]["requests_coalesced"] >= 1
        assert transport["coalescer"]["batches_flushed"] >= 1
        assert "admission_rejections" in transport["updates"]
        assert transport["updates"]["max_pending"] == 4

    def test_bare_stats_is_cached_and_fresh_bypasses(self, artifact):
        path, _, _ = artifact
        handle = start_server_thread([path], stats_cache_seconds=30.0)
        try:
            host, port = handle.address
            _, _, first = _raw_request(host, port, "GET", "/stats")
            _raw_request(host, port, "GET", "/theta?vertex=1")
            _, _, second = _raw_request(host, port, "GET", "/stats")
            assert first == second  # served from the hot cache
            _, _, fresh = _raw_request(host, port, "GET", "/stats?fresh=1")
            assert fresh != first   # bypass sees the newer request counters
            assert json.loads(fresh)["requests"]["/theta"] >= 1
        finally:
            handle.stop()

    def test_healthz_matches_offline_handle(self, async_server, artifact):
        path, _, _ = artifact
        host, port = async_server.address
        _, _, body = _raw_request(host, port, "GET", "/healthz")
        assert json.loads(body) == TipService([path]).handle("/healthz")


class TestAsyncUpdates:
    def test_update_applies_and_reads_see_it(self, artifact, tmp_path):
        path, graph, result = artifact
        working = tmp_path / "mutable.tipidx"
        shutil.copytree(path, working)
        edge = next(
            [u, w] for u in range(N_U) for w in range(25)
            if not graph.has_edge(u, w))
        handle = start_server_thread([working])
        try:
            host, port = handle.address
            status, _, body = _raw_request(
                host, port, "POST", "/update",
                json.dumps({"insert": [edge]}).encode(), "application/json")
            assert status == 200
            payload = json.loads(body)
            assert payload["streaming"]["updates_applied"] == 1
            assert payload["n_edges"] == graph.n_edges + 1
            # A coalesced read on the same server sees the new state.
            _, _, stats = _raw_request(host, port, "GET", "/stats?fresh=1")
            summary = json.loads(stats)["artifacts"]["planted-blocks.U"]
            assert summary["streaming"]["updates_applied"] == 1
        finally:
            handle.stop()

    def test_conflicting_update_answers_409(self, artifact, tmp_path):
        path, graph, _ = artifact
        working = tmp_path / "conflict.tipidx"
        shutil.copytree(path, working)
        existing = None
        for u in range(N_U):
            for w in range(25):
                if graph.has_edge(u, w):
                    existing = [u, w]
                    break
            if existing:
                break
        handle = start_server_thread([working])
        try:
            host, port = handle.address
            status, _, body = _raw_request(
                host, port, "POST", "/update",
                json.dumps({"insert": [existing]}).encode(), "application/json")
            assert status == 409
            assert json.loads(body)["status"] == 409
        finally:
            handle.stop()

    def test_overflow_rejected_with_503_and_retry_after(self, artifact):
        path, graph, _ = artifact
        service = TipService([path])
        original = service.handle

        def slow_handle(route, params=None, body=None):
            if route == "/update":
                time.sleep(0.6)  # hold the writer busy for the race below
            return original(route, params, body)

        service.handle = slow_handle
        existing = next(
            [u, w] for u in range(N_U) for w in range(25)
            if graph.has_edge(u, w))
        handle = start_server_thread(
            service=service, max_pending_updates=1, retry_after_seconds=3.0)
        try:
            host, port = handle.address
            results = []

            def post():
                # Duplicate insert: conflicts (409) instead of mutating the
                # shared module artifact — the point here is the 503 race.
                results.append(_raw_request(
                    host, port, "POST", "/update",
                    json.dumps({"insert": [existing]}).encode(),
                    "application/json"))

            first = threading.Thread(target=post)
            first.start()
            time.sleep(0.2)  # first update is now parked on the writer thread
            second_status, second_headers, second_body = _raw_request(
                host, port, "POST", "/update",
                json.dumps({"insert": [existing]}).encode(), "application/json")
            first.join(timeout=10)

            assert second_status == 503
            assert second_headers.get("Retry-After") == "3"
            overloaded = json.loads(second_body)
            assert overloaded["status"] == 503
            assert overloaded["retry_after_seconds"] == 3.0
            assert "queue is full" in overloaded["error"]
            assert results[0][0] == 409  # the admitted one ran to completion
            metrics = handle.server.admission.metrics()
            assert metrics["admission_rejections"] == 1
            assert metrics["admitted"] == 1
        finally:
            handle.stop()
