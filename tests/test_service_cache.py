"""LRU index-cache behavior: fingerprint keying, eviction, metrics."""

from __future__ import annotations

import shutil
import threading

import pytest

from repro.core.receipt import tip_decomposition
from repro.datasets.generators import planted_blocks
from repro.service.artifacts import save_artifact
from repro.service.cache import IndexCache


def _make_artifact(tmp_path, name, seed):
    graph = planted_blocks(30, 20, [(6, 5)], background_edges=30, seed=seed)
    result = tip_decomposition(graph, "U", algorithm="bup")
    path = tmp_path / f"{name}.tipidx"
    save_artifact(path, graph, result)
    return path


@pytest.fixture
def artifacts(tmp_path):
    return [_make_artifact(tmp_path, f"g{i}", seed=i) for i in range(3)]


class TestLru:
    def test_hit_miss_eviction_accounting(self, artifacts):
        a, b, c = artifacts
        cache = IndexCache(capacity=2)

        cache.get_or_load(a)
        cache.get_or_load(b)
        assert cache.stats()["misses"] == 2 and cache.stats()["hits"] == 0

        cache.get_or_load(a)  # hit; a becomes most-recent
        assert cache.stats()["hits"] == 1

        cache.get_or_load(c)  # evicts b (LRU), not a
        stats = cache.stats()
        assert stats["evictions"] == 1 and stats["entries"] == 2

        cache.get_or_load(a)  # still cached
        assert cache.stats()["hits"] == 2
        cache.get_or_load(b)  # was evicted -> miss again
        assert cache.stats()["misses"] == 4

    def test_same_index_object_on_hit(self, artifacts):
        cache = IndexCache(capacity=2)
        first = cache.get_or_load(artifacts[0])
        second = cache.get_or_load(artifacts[0])
        assert first is second

    def test_fingerprint_keying_dedupes_copies(self, artifacts, tmp_path):
        # A byte-identical copy under a different path shares the slot.
        original = artifacts[0]
        copy = tmp_path / "copy.tipidx"
        shutil.copytree(original, copy)
        cache = IndexCache(capacity=2)
        first = cache.get_or_load(original)
        second = cache.get_or_load(copy)
        assert first is second
        assert cache.stats() == {**cache.stats(), "entries": 1, "misses": 1, "hits": 1}

    def test_rebuild_invalidates_naturally(self, tmp_path):
        path = _make_artifact(tmp_path, "re", seed=1)
        cache = IndexCache(capacity=2)
        first = cache.get_or_load(path)
        # Rebuild the artifact in place: new manifest -> new fingerprint.
        graph = planted_blocks(30, 20, [(6, 5)], background_edges=30, seed=99)
        result = tip_decomposition(graph, "U", algorithm="bup")
        save_artifact(path, graph, result, overwrite=True)
        second = cache.get_or_load(path)
        assert first is not second
        assert cache.stats()["misses"] == 2
        # The stale entry is evicted immediately, not kept until LRU
        # pressure — its mmaps would pin the replaced arrays on disk.
        assert cache.stats()["entries"] == 1
        assert cache.stats()["evictions"] == 1

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            IndexCache(capacity=0)

    def test_clear(self, artifacts):
        cache = IndexCache(capacity=4)
        cache.get_or_load(artifacts[0])
        cache.clear()
        assert len(cache) == 0

    def test_concurrent_loads_are_safe(self, artifacts):
        cache = IndexCache(capacity=2)
        errors: list[BaseException] = []

        def worker():
            try:
                for path in artifacts * 5:
                    index = cache.get_or_load(path)
                    assert index.n_vertices == 30
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == 6 * 5 * len(artifacts)
