"""Chaos property: seeded fault schedules never break prefix consistency.

A hypothesis-generated :class:`~repro.service.faults.FaultPlan` (count-
capped rules over the replication and scatter/gather fault sites) runs
against a leader (2-shard router) + two followers wired together by a
socket-free loopback HTTP client.  Under *any* such schedule:

* every successful read is byte-identical to some prefix-consistent
  snapshot of the update sequence (faults turn into failed requests or
  stale-but-consistent answers, never wrong ones);
* leader updates are never torn — each acknowledged batch advances the
  replication offset by exactly one;
* once the schedule exhausts (every rule is count-capped), the topology
  converges to lag 0 without operator action, including followers that
  diverged on corrupted records and had to re-bootstrap from a snapshot.
"""

from __future__ import annotations

import json
import random
import shutil
import tempfile
from pathlib import Path
from urllib.parse import parse_qs, urlsplit

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.receipt import tip_decomposition
from repro.datasets.generators import planted_blocks
from repro.errors import ReplicationError, ServiceError
from repro.service import faults
from repro.service.artifacts import save_artifact
from repro.service.faults import FaultPlan, FaultRule
from repro.service.replication import ReplicationCoordinator
from repro.service.resilience import RetryPolicy
from repro.service.server import TipService, to_jsonable

BATCHES = (
    {"insert": [[0, 20], [1, 21]]},
    {"insert": [[2, 22]], "delete": [[0, 20]]},
    {"insert": [[3, 23], [4, 24]]},
)

PROBE = {"vertices": list(range(40))}

#: The sites a schedule may break.  log.append / artifact.save are
#: exercised by the dedicated crash-recovery tests — here they would
#: (correctly) fail leader updates, which is not the property under test.
CHAOS_SITES = ("replication.push", "replication.poll", "shard.gather")

_rule = st.fixed_dictionaries({
    "site": st.sampled_from(CHAOS_SITES),
    "action": st.sampled_from(("drop", "error", "corrupt")),
    "count": st.integers(min_value=1, max_value=3),
    "probability": st.sampled_from((0.5, 1.0)),
})

_schedule = st.fixed_dictionaries({
    "rules": st.lists(_rule, min_size=1, max_size=4),
    "seed": st.integers(min_value=0, max_value=2**16),
})


@pytest.fixture(scope="module")
def source(tmp_path_factory):
    graph = planted_blocks(40, 25, [(8, 6), (6, 4)], background_edges=50, seed=3)
    result = tip_decomposition(graph, "U", algorithm="receipt", n_partitions=4)
    path = tmp_path_factory.mktemp("chaos") / "blocks.tipidx"
    save_artifact(path, graph, result)
    return path


@pytest.fixture(scope="module")
def reference_snapshots(source, tmp_path_factory):
    """Canonical /theta/batch bytes after each update prefix (no faults)."""
    root = tmp_path_factory.mktemp("chaos-ref")
    artifact = root / "blocks.tipidx"
    shutil.copytree(source, artifact)
    service = TipService([artifact])
    snapshots = [_canonical(service.handle("/theta/batch", {}, dict(PROBE)))]
    for batch in BATCHES:
        service.handle("/update", {}, dict(batch))
        snapshots.append(_canonical(service.handle("/theta/batch", {}, dict(PROBE))))
    return snapshots


def _canonical(payload: dict) -> str:
    return json.dumps(to_jsonable(payload), sort_keys=True)


def _loopback(services: dict):
    """An in-process stand-in for ``_http_json``, keyed by base URL."""

    def client(url: str, *, payload=None, timeout=None):
        for base, service in services.items():
            if url.startswith(base):
                parsed = urlsplit(url[len(base):])
                params = {key: values[-1]
                          for key, values in parse_qs(parsed.query).items()}
                try:
                    result = service.handle(parsed.path, params, payload)
                except ReplicationError:
                    raise
                except ServiceError as exc:
                    # Over real HTTP this would be an HTTPError that
                    # _http_json wraps; mirror that contract.
                    raise ReplicationError(str(exc)) from None
                # Round-trip through JSON so only serializable state crosses.
                return json.loads(json.dumps(to_jsonable(result)))
        raise ReplicationError(f"no loopback service at {url}")

    return client


def _fast_retry():
    return RetryPolicy(max_attempts=2, base_delay=0.0005, max_delay=0.002,
                       budget_seconds=1.0, retryable=(ReplicationError,),
                       rng=random.Random(0))


def _try_sync(coordinator):
    try:
        coordinator.sync_once()
    except (ReplicationError, ServiceError):
        pass  # an injected poll fault; the next sync retries


def _read(service, snapshots, reads):
    """One /theta/batch read; successful answers must match a snapshot."""
    try:
        answer = _canonical(service.handle("/theta/batch", {}, dict(PROBE)))
    except ServiceError as exc:
        assert exc.status in (503,), f"unexpected read failure: {exc}"
        return
    assert answer in snapshots, "read returned a non-prefix answer"
    reads.append(answer)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(schedule=_schedule)
def test_chaos_schedule_preserves_prefix_consistency(
        schedule, source, reference_snapshots):
    plan = FaultPlan(
        [FaultRule(**rule) for rule in schedule["rules"]],
        seed=schedule["seed"])
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        arts = {}
        for node in ("leader", "f1", "f2"):
            (root / node).mkdir()
            arts[node] = root / node / "blocks.tipidx"
            shutil.copytree(source, arts[node])

        leader = TipService([arts["leader"]], shards=2)
        f1 = TipService([arts["f1"]])
        f2 = TipService([arts["f2"]])
        loop = _loopback({"http://leader": leader,
                          "http://f1": f1, "http://f2": f2})
        lcoord = ReplicationCoordinator(
            leader, role="leader", log_path=root / "leader.replog",
            follower_urls=("http://f1", "http://f2"),
            retry_policy=_fast_retry(), http_client=loop)
        fcoords = [
            ReplicationCoordinator(
                service, role="follower", leader_url="http://leader",
                retry_policy=_fast_retry(), http_client=loop)
            for service in (f1, f2)
        ]

        reads: list = []
        with faults.armed(plan):
            for i, batch in enumerate(BATCHES, start=1):
                payload = leader.handle("/update", {}, dict(batch))
                # Updates are never torn: each acknowledged batch advances
                # the log by exactly one offset.
                assert payload["replication"]["offset"] == i
                for service, fcoord in zip((f1, f2), fcoords):
                    _try_sync(fcoord)
                    _read(service, reference_snapshots, reads)
                _read(leader, reference_snapshots, reads)
            # Drain the schedule: keep syncing until every count-capped
            # rule has spent its budget (bounded by the rule counts).
            for _ in range(16):
                if plan.exhausted():
                    break
                for fcoord in fcoords:
                    _try_sync(fcoord)
                _read(leader, reference_snapshots, reads)

        # Faults cleared: the topology must converge to lag 0 on its own.
        for service, fcoord in zip((f1, f2), fcoords):
            for _ in range(4):
                _try_sync(fcoord)
                if (fcoord.diverged is None
                        and fcoord.status().get("lag") == 0):
                    break
            status = fcoord.status()
            assert status["lag"] == 0, f"follower never converged: {status}"
            assert fcoord.diverged is None
            answer = _canonical(service.handle("/theta/batch", {}, dict(PROBE)))
            assert answer == reference_snapshots[-1]
        assert lcoord.status()["offset"] == len(BATCHES)
