"""Coalescer and admission-control tests (transport-free).

The contract under test is the tentpole guarantee of the async front
end: any interleaving of concurrent point-θ requests through
:class:`ThetaCoalescer` resolves with *exactly* what sequential
``TipService.handle("/theta", ...)`` calls would have produced — same
payloads, same error text, same status — no matter how the event loop
slices the batches.  Plus: the single-writer admission controller never
tears a read and rejects overflow with 503 immediately.
"""

from __future__ import annotations

import asyncio
import shutil
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.receipt import tip_decomposition
from repro.datasets.generators import planted_blocks
from repro.errors import ServiceError, ServiceOverloadedError
from repro.service.artifacts import save_artifact
from repro.service.coalesce import ThetaCoalescer, UpdateAdmissionController
from repro.service.server import TipService

N_U = 40


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    graph = planted_blocks(N_U, 25, [(8, 6), (6, 4)], background_edges=50, seed=3)
    result = tip_decomposition(graph, "U", algorithm="receipt", n_partitions=4)
    path = tmp_path_factory.mktemp("coalesce") / "blocks.tipidx"
    save_artifact(path, graph, result)
    return path, graph, result


def _sequential_answers(path, requests):
    """Ground truth: one handle() call per request on a fresh service."""
    service = TipService([path])
    answers = []
    for vertex, _ in requests:
        try:
            answers.append(service.handle("/theta", {"vertex": str(vertex)}))
        except ServiceError as error:
            answers.append(("error", str(error), error.status))
    return answers


async def _coalesced_answers(coalescer, requests):
    async def one(vertex, jitter):
        # Yield to the loop a request-specific number of times before
        # submitting, so hypothesis explores different batch boundaries.
        for _ in range(jitter):
            await asyncio.sleep(0)
        try:
            return await coalescer.submit(None, vertex)
        except ServiceError as error:
            return ("error", str(error), error.status)

    return await asyncio.gather(
        *(one(vertex, jitter) for vertex, jitter in requests))


class TestCoalescerEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(requests=st.lists(
        st.tuples(st.integers(-5, N_U + 5), st.integers(0, 3)),
        min_size=1, max_size=40))
    def test_any_interleaving_matches_sequential_handle(self, artifact, requests):
        path, _, _ = artifact
        expected = _sequential_answers(path, requests)
        coalescer = ThetaCoalescer(TipService([path]), max_batch=8)
        got = asyncio.run(_coalesced_answers(coalescer, requests))
        assert got == expected
        metrics = coalescer.metrics()
        assert metrics["requests_coalesced"] == len(requests)
        assert metrics["queue_depth"] == 0

    def test_single_tick_burst_is_one_batch(self, artifact):
        path, _, result = artifact

        async def run():
            coalescer = ThetaCoalescer(TipService([path]))
            futures = [coalescer.submit(None, v) for v in range(10)]
            payloads = await asyncio.gather(*futures)
            return coalescer.metrics(), payloads

        metrics, payloads = asyncio.run(run())
        assert metrics["batches_flushed"] == 1
        assert metrics["largest_batch"] == 10
        assert metrics["mean_batch_size"] == 10.0
        assert payloads == [
            {"vertex": v, "theta": int(result.tip_numbers[v])} for v in range(10)
        ]

    def test_max_batch_triggers_early_flush(self, artifact):
        path, _, _ = artifact

        async def run():
            coalescer = ThetaCoalescer(TipService([path]), max_batch=4)
            futures = [coalescer.submit(None, v % N_U) for v in range(10)]
            await asyncio.gather(*futures)
            return coalescer.metrics()

        metrics = asyncio.run(run())
        # 10 submissions in one tick with max_batch=4: two size-triggered
        # flushes (at 4 and 8) plus the call_soon flush for the tail.
        assert metrics["size_triggered_flushes"] == 2
        assert metrics["batches_flushed"] == 3
        assert metrics["largest_batch"] == 4
        assert metrics["requests_coalesced"] == 10

    def test_max_delay_accumulates_across_ticks(self, artifact):
        path, _, result = artifact

        async def run():
            coalescer = ThetaCoalescer(TipService([path]), max_delay=0.02)
            first = coalescer.submit(None, 1)
            await asyncio.sleep(0)  # a later tick: would flush if delay were 0
            assert not first.done()
            second = coalescer.submit(None, 2)
            payloads = await asyncio.gather(first, second)
            return coalescer.metrics(), payloads

        metrics, payloads = asyncio.run(run())
        assert metrics["batches_flushed"] == 1
        assert metrics["largest_batch"] == 2
        assert payloads[0] == {"vertex": 1, "theta": int(result.tip_numbers[1])}

    def test_unknown_artifact_rejects_whole_batch_in_band(self, artifact):
        path, _, _ = artifact

        async def run():
            coalescer = ThetaCoalescer(TipService([path]))
            futures = [coalescer.submit("ghost", v) for v in (0, 1)]
            return await asyncio.gather(*futures, return_exceptions=True)

        results = asyncio.run(run())
        assert all(isinstance(r, ServiceError) for r in results)
        assert all(r.status == 404 and "unknown artifact" in str(r) for r in results)

    def test_rejects_nonpositive_max_batch(self, artifact):
        path, _, _ = artifact
        with pytest.raises(ValueError, match="max_batch"):
            ThetaCoalescer(TipService([path]), max_batch=0)


class _GatedService:
    """Stub service whose /update blocks until released (admission tests)."""

    def __init__(self):
        self.release = threading.Event()
        self.started = threading.Event()
        self.calls = 0
        self.concurrent = 0
        self.peak_concurrent = 0
        self._lock = threading.Lock()

    def handle(self, route, params=None, body=None):
        with self._lock:
            self.calls += 1
            self.concurrent += 1
            self.peak_concurrent = max(self.peak_concurrent, self.concurrent)
        self.started.set()
        self.release.wait(timeout=10)
        with self._lock:
            self.concurrent -= 1
        return {"ok": True, "route": route, "body": body}


class TestAdmissionController:
    def test_overflow_rejected_immediately_with_503(self):
        async def run():
            service = _GatedService()
            controller = UpdateAdmissionController(
                service, max_pending=1, retry_after_seconds=2.5)
            running = asyncio.create_task(
                controller.submit({}, {"insert": [[0, 0]]}))
            await asyncio.get_running_loop().run_in_executor(
                None, service.started.wait, 10)
            with pytest.raises(ServiceOverloadedError) as excinfo:
                await controller.submit({}, {"insert": [[1, 1]]})
            assert excinfo.value.status == 503
            assert excinfo.value.retry_after == 2.5
            service.release.set()
            first = await running
            assert first["ok"] is True
            metrics = controller.metrics()
            controller.close()
            return metrics

        metrics = asyncio.run(run())
        assert metrics["admission_rejections"] == 1
        assert metrics["admitted"] == 1
        assert metrics["completed"] == 1
        assert metrics["pending"] == 0

    def test_admitted_updates_run_strictly_one_at_a_time(self):
        async def run():
            service = _GatedService()
            service.release.set()  # no blocking; measure overlap only
            controller = UpdateAdmissionController(service, max_pending=4)
            await asyncio.gather(
                *(controller.submit({}, {"insert": [[i, i]]}) for i in range(4)))
            metrics = controller.metrics()
            controller.close()
            return service.peak_concurrent, metrics

        peak, metrics = asyncio.run(run())
        assert peak == 1  # single writer thread: never two updates at once
        assert metrics["admitted"] == 4
        assert metrics["admission_rejections"] == 0

    def test_rejects_nonpositive_max_pending(self):
        with pytest.raises(ValueError, match="max_pending"):
            UpdateAdmissionController(_GatedService(), max_pending=0)


class TestMixedReadUpdateStress:
    """Coalesced reads racing the writer thread never observe a torn state.

    Every θ read during alternating insert/delete rounds must equal the
    value from one of the two consistent snapshots (base graph or graph
    with the delta applied); staleness counters are strictly monotone and
    the manifest fingerprint always matches one complete state.
    """

    def test_reads_see_only_complete_snapshots(self, artifact, tmp_path):
        path, graph, result = artifact
        working = tmp_path / "working.tipidx"
        shutil.copytree(path, working)

        # A delta of fresh edges (absent from the base graph).
        delta = []
        for u in range(N_U):
            for w in range(25):
                if not graph.has_edge(u, w):
                    delta.append([u, w])
                if len(delta) == 4:
                    break
            if len(delta) == 4:
                break
        assert len(delta) == 4

        # Ground-truth snapshots: base thetas from the fixture result and
        # post-insert thetas computed on an offline throwaway copy.
        base_thetas = {v: int(result.tip_numbers[v]) for v in range(N_U)}
        scratch = tmp_path / "scratch.tipidx"
        shutil.copytree(path, scratch)
        offline = TipService([scratch])
        offline.handle("/update", {}, {"insert": delta})
        updated_thetas = {
            v: offline.handle("/theta", {"vertex": str(v)})["theta"]
            for v in range(N_U)
        }
        assert updated_thetas != base_thetas  # the delta must be visible

        service = TipService([working])
        observations = []
        stats_seen = []

        async def run():
            coalescer = ThetaCoalescer(service, max_batch=16)
            controller = UpdateAdmissionController(service, max_pending=2)
            stop = asyncio.Event()

            async def reader(seed):
                rounds = 0
                while not stop.is_set():
                    vertex = (seed * 7 + rounds * 3) % N_U
                    payload = await coalescer.submit(None, vertex)
                    observations.append((vertex, payload["theta"]))
                    rounds += 1
                    await asyncio.sleep(0)

            async def writer():
                for _ in range(3):
                    applied = await controller.submit({}, {"insert": delta})
                    stats_seen.append(service.handle(
                        "/stats")["artifacts"]["planted-blocks.U"])
                    assert "mode" in applied
                    reverted = await controller.submit({}, {"delete": delta})
                    stats_seen.append(service.handle(
                        "/stats")["artifacts"]["planted-blocks.U"])
                    assert "mode" in reverted
                stop.set()

            readers = [asyncio.create_task(reader(seed)) for seed in range(4)]
            await writer()
            await asyncio.gather(*readers)
            controller.close()

        asyncio.run(run())

        assert len(observations) > 20
        torn = [
            (vertex, theta) for vertex, theta in observations
            if theta not in (base_thetas[vertex], updated_thetas[vertex])
        ]
        assert torn == [], f"reads outside both snapshots: {torn[:5]}"

        # Staleness bookkeeping is strictly monotone across the rounds.
        applied_counts = [s["streaming"]["updates_applied"] for s in stats_seen]
        assert applied_counts == sorted(applied_counts)
        assert applied_counts[-1] == 6
        # After the final delete round the artifact is back to base state.
        final = {
            v: service.handle("/theta", {"vertex": str(v)})["theta"]
            for v in range(N_U)
        }
        assert final == base_thetas
