"""Deep diagnostics over both transports: /slo, /debug/memory, /debug/profile."""

from __future__ import annotations

import json
import logging
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.receipt import tip_decomposition
from repro.datasets.generators import planted_blocks
from repro.errors import ServiceError
from repro.service.aserver import start_server_thread
from repro.service.artifacts import save_artifact
from repro.service.server import (
    DIAGNOSTIC_ENDPOINTS,
    DOCUMENTED_METRICS,
    ENDPOINTS,
    TipService,
    create_server,
)


@pytest.fixture(autouse=True)
def _reset_repro_logging():
    yield
    logger = logging.getLogger("repro")
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_obs", False):
            logger.removeHandler(handler)
    logger.setLevel(logging.NOTSET)
    logger.propagate = True


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    graph = planted_blocks(40, 25, [(8, 6), (6, 4)], background_edges=50, seed=3)
    result = tip_decomposition(graph, "U", algorithm="receipt", n_partitions=4)
    path = tmp_path_factory.mktemp("diag") / "blocks.tipidx"
    save_artifact(path, graph, result)
    return path


@pytest.fixture()
def service(artifact):
    return TipService([artifact])


def _get(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, response.read()


class TestSloEndpoint:
    def test_payload_shape(self, service):
        payload = service.handle("/slo")
        assert payload["status"] in ("ok", "degraded")
        names = [entry["name"] for entry in payload["objectives"]]
        assert names == ["request-latency", "availability",
                         "artifact-staleness", "breaker-open"]
        for entry in payload["objectives"]:
            assert entry["state"] in ("ok", "breached", "no_data")
            assert entry["burn_rate"] >= 0.0

    def test_fresh_artifact_is_not_degraded(self, service):
        payload = service.handle("/slo")
        assert payload["status"] == "ok"
        staleness = next(entry for entry in payload["objectives"]
                         if entry["kind"] == "staleness")
        # The artifact was just built: staleness is seconds, not hours.
        assert staleness["state"] == "ok"
        assert staleness["staleness_seconds"] < 3600

    def test_cached_requires_a_prior_evaluation(self, service):
        with pytest.raises(ServiceError) as excinfo:
            service.handle("/slo", {"cached": "1"})
        assert excinfo.value.status == 404
        live = service.handle("/slo")
        assert service.handle("/slo", {"cached": "1"}) is live

    def test_healthz_carries_slo_status(self, service):
        payload = service.handle("/healthz")
        assert payload == {"status": "ok", "artifacts": service.artifact_names}

    def test_healthz_degrades_on_breach(self, artifact):
        from repro.obs.slo import Objective, SloMonitor

        service = TipService([artifact])
        # Replace the staleness promise with an impossible one: any
        # artifact older than a millisecond is in breach.
        service.slo = SloMonitor(
            latency_source=service._latency_counts,
            availability_source=service._availability_counts,
            staleness_source=service._worst_staleness,
            objectives=(Objective(name="instant", kind="staleness",
                                  description="impossibly fresh",
                                  threshold_seconds=0.001),),
        )
        assert service.handle("/healthz")["status"] == "degraded"
        assert service.handle("/slo")["status"] == "degraded"


class TestSloScope:
    """SLO objectives cover the serving API, not the operator plane."""

    def test_slow_profile_request_does_not_burn_the_latency_slo(self, service):
        # /debug/profile?seconds=N blocks for N seconds by design;
        # profiling a healthy instance must not degrade it.
        service.observe_request("thread", "/theta", 200, 0.01)
        service.observe_request("thread", "/debug/profile", 200, 5.0)
        payload = service.handle("/slo")
        latency = next(entry for entry in payload["objectives"]
                       if entry["kind"] == "latency")
        assert latency["state"] == "ok"
        assert latency["burn_rate"] == 0.0
        assert service.handle("/healthz")["status"] == "ok"

    def test_diagnostic_5xx_does_not_burn_availability(self, service):
        service.observe_request("thread", "/theta", 200, 0.01)
        service.observe_request("thread", "/debug/memory", 500, 0.01)
        payload = service.handle("/slo")
        availability = next(entry for entry in payload["objectives"]
                            if entry["kind"] == "availability")
        assert availability["state"] == "ok"
        assert availability["burn_rate"] == 0.0


class TestMemoryEndpoint:
    def test_payload_joins_sources_and_artifacts(self, service):
        payload = service.handle("/debug/memory")
        assert set(payload) == {"process", "tracemalloc", "workspaces",
                                "shm", "artifacts"}
        assert payload["process"]["rss_bytes"] > 0
        entry = payload["artifacts"][service.artifact_names[0]]
        assert entry["array_bytes"] > 0
        assert entry["loaded"] is False  # nothing queried yet: no index load
        assert entry["peak_scratch_bytes"] > 0  # from the build counters

    def test_loaded_flag_follows_the_cache(self, service):
        service.handle("/theta", {"vertex": "0"})
        payload = service.handle("/debug/memory")
        name = service.artifact_names[0]
        assert payload["artifacts"][name]["loaded"] is True

    def test_cached_returns_stored_snapshot(self, service):
        with pytest.raises(ServiceError) as excinfo:
            service.handle("/debug/memory", {"cached": "1"})
        assert excinfo.value.status == 404
        live = service.handle("/debug/memory")
        assert service.handle("/debug/memory", {"cached": "1"}) is live

    def test_top_param_validated(self, service):
        with pytest.raises(ServiceError):
            service.handle("/debug/memory", {"top": "many"})


class TestProfileEndpoint:
    def test_on_demand_profile(self, service):
        payload = service.handle("/debug/profile",
                                 {"seconds": "0.05", "interval_ms": "1"})
        assert payload["profile"] == "sampling"
        assert payload["duration_seconds"] >= 0.05
        assert payload["samples"] >= 1

    def test_last_returns_stored_profile(self, service):
        with pytest.raises(ServiceError) as excinfo:
            service.handle("/debug/profile", {"last": "1"})
        assert excinfo.value.status == 404
        live = service.handle("/debug/profile", {"seconds": "0.02"})
        assert service.handle("/debug/profile", {"last": "1"}) is live

    def test_duration_cap_is_a_400(self, service):
        with pytest.raises(ServiceError) as excinfo:
            service.handle("/debug/profile", {"seconds": "3600"})
        assert excinfo.value.status == 400

    def test_bad_params_are_a_400(self, service):
        with pytest.raises(ServiceError) as excinfo:
            service.handle("/debug/profile", {"seconds": "soon"})
        assert excinfo.value.status == 400

    def test_busy_slot_is_a_409(self, service):
        from repro.obs.profile import acquire_profile_slot

        with acquire_profile_slot():
            with pytest.raises(ServiceError) as excinfo:
                service.handle("/debug/profile", {"seconds": "0.01"})
        assert excinfo.value.status == 409


class TestRouting:
    def test_diagnostics_are_not_json_api_endpoints(self):
        # bench_serving's byte-identity harness and the 404 contract both
        # enumerate ENDPOINTS; diagnostics live in their own tuple.
        assert not set(DIAGNOSTIC_ENDPOINTS) & set(ENDPOINTS)
        assert DIAGNOSTIC_ENDPOINTS == (
            "/slo", "/debug/memory", "/debug/profile",
            "/replication/status", "/replication/log", "/replication/apply",
            "/replication/snapshot")

    def test_slo_and_memory_metric_families_documented(self):
        for name in ("repro_slo_burn_rate", "repro_slo_ok",
                     "repro_memory_rss_bytes", "repro_memory_workspace_bytes",
                     "repro_memory_shm_bytes", "repro_memory_artifact_bytes",
                     "repro_memory_tracemalloc_bytes"):
            assert name in DOCUMENTED_METRICS, name

    def test_metrics_scrape_carries_slo_and_memory_gauges(self, service):
        text = service.metrics_text()
        assert 'repro_slo_burn_rate{objective="availability"}' in text
        assert 'repro_slo_ok{objective="request-latency"}' in text
        assert "repro_memory_rss_bytes" in text
        for line in text.splitlines():
            if line.startswith("repro_memory_rss_bytes"):
                assert float(line.rsplit(" ", 1)[1]) > 0


class TestTransportParity:
    """One shared TipService behind both transports answers byte-identically."""

    @pytest.fixture()
    def both(self, artifact):
        service = TipService([artifact])
        server = create_server([artifact], port=0, service=service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[0], server.server_address[1]
        handle = start_server_thread([artifact], service=service)
        yield service, f"http://{host}:{port}", handle.base_url
        handle.stop()
        server.shutdown()
        server.server_close()

    def test_diagnostics_byte_identical_across_transports(self, both):
        service, threaded, asynchronous = both
        # Prime each diagnostic once; the cached/last variants then serve
        # the same stored object through both transports.
        _get(f"{threaded}/slo")
        _get(f"{threaded}/debug/memory")
        _get(f"{threaded}/debug/profile?seconds=0.05&interval_ms=1")
        for route in ("/slo?cached=1", "/debug/memory?cached=1",
                      "/debug/profile?last=1"):
            status_t, body_t = _get(threaded + route)
            status_a, body_a = _get(asynchronous + route)
            assert status_t == status_a == 200
            assert body_t == body_a, route

    def test_healthz_bodies_match(self, both):
        _, threaded, asynchronous = both
        assert _get(f"{threaded}/healthz")[1] == _get(f"{asynchronous}/healthz")[1]

    def test_profile_runs_off_the_event_loop(self, both):
        # A profile request must not freeze the async transport: point
        # queries issued while it samples still answer promptly.
        _, _, asynchronous = both
        result = {}

        def profile():
            result["profile"] = _get(
                f"{asynchronous}/debug/profile?seconds=0.5&interval_ms=2")

        worker = threading.Thread(target=profile)
        worker.start()
        status, body = _get(f"{asynchronous}/theta?vertex=0")
        assert status == 200 and json.loads(body)["vertex"] == 0
        worker.join(timeout=10.0)
        assert result["profile"][0] == 200
        payload = json.loads(result["profile"][1])
        assert payload["duration_seconds"] >= 0.5

    def test_unknown_route_names_the_diagnostics(self, both):
        _, threaded, asynchronous = both
        for base in (threaded, asynchronous):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(f"{base}/debug/nope", timeout=10)
            assert excinfo.value.code == 404
            message = json.loads(excinfo.value.read())["error"]
            for route in DIAGNOSTIC_ENDPOINTS:
                assert route in message
