"""Deterministic fault injection: rules, plans, parsing, process arming."""

from __future__ import annotations

import json

import pytest

from repro.errors import FaultInjectedError, ServiceError
from repro.service import faults
from repro.service.faults import FaultPlan, FaultRule


@pytest.fixture(autouse=True)
def _disarmed():
    """Every test starts and ends with fault injection disarmed."""
    faults.uninstall()
    yield
    faults.uninstall()


class TestFaultRule:
    def test_rejects_unknown_action(self):
        with pytest.raises(ServiceError):
            FaultRule(site="log.append", action="explode")

    def test_rejects_bad_probability(self):
        with pytest.raises(ServiceError):
            FaultRule(site="log.append", action="drop", probability=0.0)
        with pytest.raises(ServiceError):
            FaultRule(site="log.append", action="drop", probability=1.5)

    def test_rejects_bad_count_after_delay(self):
        with pytest.raises(ServiceError):
            FaultRule(site="s", action="drop", count=0)
        with pytest.raises(ServiceError):
            FaultRule(site="s", action="drop", after=-1)
        with pytest.raises(ServiceError):
            FaultRule(site="s", action="delay", delay_seconds=-0.1)

    def test_prefix_glob_matching(self):
        rule = FaultRule(site="replication.*", action="drop")
        assert rule.matches("replication.push")
        assert rule.matches("replication.poll")
        assert not rule.matches("shard.gather")
        exact = FaultRule(site="shard.gather", action="drop")
        assert exact.matches("shard.gather")
        assert not exact.matches("shard.gather.extra")


class TestFaultPlan:
    def test_actions_drop_error_corrupt_delay(self):
        sleeps = []
        plan = FaultPlan(
            [FaultRule(site="a", action="drop"),
             FaultRule(site="b", action="error"),
             FaultRule(site="c", action="corrupt"),
             FaultRule(site="d", action="delay", delay_seconds=0.02)],
            seed=1, sleep=sleeps.append)
        assert plan.fire("a") == "drop"
        with pytest.raises(FaultInjectedError) as excinfo:
            plan.fire("b")
        assert excinfo.value.status == 503
        assert excinfo.value.site == "b"
        assert plan.fire("c") == "corrupt"
        assert plan.fire("d") == "delay"
        assert sleeps == [0.02]
        assert plan.fire("unmatched") is None
        assert plan.stats()["injected_total"] == 4

    def test_count_caps_firings_then_exhausted(self):
        plan = FaultPlan([FaultRule(site="s", action="drop", count=2)], seed=0)
        assert plan.fire("s") == "drop"
        assert plan.fire("s") == "drop"
        assert plan.fire("s") is None
        assert plan.exhausted()

    def test_after_skips_warmup_calls(self):
        plan = FaultPlan([FaultRule(site="s", action="drop", after=2)], seed=0)
        assert plan.fire("s") is None
        assert plan.fire("s") is None
        assert plan.fire("s") == "drop"

    def test_uncapped_rules_never_exhaust(self):
        plan = FaultPlan([FaultRule(site="s", action="drop")], seed=0)
        assert not plan.exhausted()

    def test_first_matching_rule_wins(self):
        plan = FaultPlan(
            [FaultRule(site="s", action="drop", count=1),
             FaultRule(site="s", action="corrupt")], seed=0)
        assert plan.fire("s") == "drop"
        assert plan.fire("s") == "corrupt"  # first rule spent its budget

    def test_same_seed_same_schedule(self):
        def run(seed):
            plan = FaultPlan(
                [FaultRule(site="s", action="drop", probability=0.4)], seed=seed)
            return [plan.fire("s") for _ in range(40)]

        assert run(7) == run(7)
        assert run(7) != run(8)  # overwhelmingly likely for 40 p=0.4 rolls

    def test_probability_zero_point_impossible_sequence_is_deterministic(self):
        # Two independent plans with the same seed interleave identically
        # even when fire() calls alternate between matching sites.
        rules = [FaultRule(site="a", action="drop", probability=0.5),
                 FaultRule(site="b", action="corrupt", probability=0.5)]
        first = FaultPlan(list(rules), seed=3)
        second = FaultPlan(
            [FaultRule(**{k: getattr(r, k) for k in
                          ("site", "action", "probability")}) for r in rules],
            seed=3)
        sequence = ["a", "b", "a", "a", "b", "a", "b", "b"] * 5
        assert ([first.fire(s) for s in sequence]
                == [second.fire(s) for s in sequence])


class TestParse:
    def test_string_syntax(self):
        plan = FaultPlan.parse(
            "replication.push:drop:p=0.5:count=3;shard.gather:delay:ms=20",
            seed=9)
        assert plan.seed == 9
        assert len(plan.rules) == 2
        first, second = plan.rules
        assert (first.site, first.action, first.probability, first.count) == (
            "replication.push", "drop", 0.5, 3)
        assert (second.site, second.action) == ("shard.gather", "delay")
        assert second.delay_seconds == pytest.approx(0.02)

    def test_string_syntax_rejects_garbage(self):
        with pytest.raises(ServiceError):
            FaultPlan.parse("just-a-site")
        with pytest.raises(ServiceError):
            FaultPlan.parse("s:drop:budget=3")
        with pytest.raises(ServiceError):
            FaultPlan.parse("s:drop:p=high")
        with pytest.raises(ServiceError):
            FaultPlan.parse("   ")

    def test_inline_json(self):
        plan = FaultPlan.parse(json.dumps({
            "seed": 4,
            "rules": [{"site": "log.append", "action": "corrupt", "count": 1},
                      {"site": "replication.*", "action": "delay",
                       "delay_ms": 5}],
        }))
        assert plan.seed == 4
        assert plan.rules[1].delay_seconds == pytest.approx(0.005)

    def test_json_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(
            {"seed": 2, "rules": [{"site": "s", "action": "drop"}]}),
            encoding="utf-8")
        plan = FaultPlan.parse(str(path))
        assert plan.seed == 2 and plan.rules[0].site == "s"
        # An explicit seed argument overrides the file's.
        assert FaultPlan.parse(str(path), seed=77).seed == 77

    def test_json_errors(self, tmp_path):
        with pytest.raises(ServiceError):
            FaultPlan.parse("{not json")
        with pytest.raises(ServiceError):
            FaultPlan.parse('{"seed": 1}')
        with pytest.raises(ServiceError):
            FaultPlan.parse(str(tmp_path / "missing.json"))


class TestArming:
    def test_fire_is_noop_when_disarmed(self):
        assert faults.active() is None
        assert faults.fire("log.append") is None
        assert faults.metrics() == {
            "armed": False, "injected_total": 0, "by_site": {}}

    def test_armed_context_installs_and_disarms(self):
        plan = FaultPlan([FaultRule(site="s", action="drop")], seed=5)
        with faults.armed(plan):
            assert faults.active() is plan
            assert faults.fire("s") == "drop"
            payload = faults.metrics()
            assert payload["armed"] and payload["seed"] == 5
            assert payload["by_site"] == {"s": 1}
        assert faults.active() is None

    def test_arm_from_env(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_PLAN, "s:drop:count=1")
        monkeypatch.setenv(faults.ENV_SEED, "42")
        plan = faults.arm_from_env()
        assert plan is not None and plan.seed == 42
        assert faults.active() is plan
        faults.uninstall()
        monkeypatch.delenv(faults.ENV_PLAN)
        assert faults.arm_from_env() is None
