"""Property-based equivalence of TipIndex queries against naive scans.

Every query a :class:`~repro.service.index.TipIndex` answers from its
θ-sorted permutation / level CSR must agree with the obvious linear scan
over the raw :class:`TipDecompositionResult` arrays — on arbitrary tip
assignments, not just ones a real decomposition would produce.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.hierarchy import butterfly_connected_components
from repro.core.receipt import tip_decomposition
from repro.errors import ServiceError
from repro.peeling.base import TipDecompositionResult
from repro.service.index import TipIndex, level_csr, sorted_order

tip_arrays = st.lists(st.integers(min_value=0, max_value=60), min_size=0, max_size=80)


def _index_for(tips: list[int]) -> tuple[TipIndex, TipDecompositionResult]:
    array = np.asarray(tips, dtype=np.int64)
    result = TipDecompositionResult(
        tip_numbers=array, side="U", initial_butterflies=array, algorithm="synthetic"
    )
    return TipIndex.from_result(result), result


@settings(max_examples=60, deadline=None)
@given(tips=tip_arrays)
def test_theta_batch_matches_raw_array(tips):
    index, result = _index_for(tips)
    vertices = np.arange(len(tips), dtype=np.int64)
    assert np.array_equal(index.theta_batch(vertices), result.tip_numbers)
    for vertex in range(min(len(tips), 5)):
        assert index.theta(vertex) == result.tip_number(vertex)


@settings(max_examples=60, deadline=None)
@given(tips=tip_arrays, k=st.integers(min_value=0, max_value=70))
def test_k_tip_members_match_naive_threshold_scan(tips, k):
    index, result = _index_for(tips)
    expected = result.vertices_with_tip_at_least(k)
    assert np.array_equal(index.k_tip_members(k), expected)
    assert index.k_tip_size(k) == expected.size


@settings(max_examples=60, deadline=None)
@given(tips=tip_arrays, k=st.integers(min_value=0, max_value=70),
       limit=st.integers(min_value=0, max_value=90))
def test_k_tip_members_limit_is_sorted_prefix(tips, k, limit):
    index, result = _index_for(tips)
    expected = result.vertices_with_tip_at_least(k)[:limit]
    assert np.array_equal(index.k_tip_members(k, limit=limit), expected)


@settings(max_examples=60, deadline=None)
@given(tips=tip_arrays)
def test_histogram_and_levels_match_result(tips):
    index, result = _index_for(tips)
    assert index.histogram() == result.histogram()
    assert np.array_equal(index.levels(), np.unique(result.tip_numbers))
    assert index.max_tip_number == result.max_tip_number


@settings(max_examples=60, deadline=None)
@given(tips=st.lists(st.integers(min_value=0, max_value=60), min_size=1, max_size=80),
       k=st.integers(min_value=1, max_value=80))
def test_top_k_matches_naive_ranking(tips, k):
    index, _ = _index_for(tips)
    expected = sorted(range(len(tips)), key=lambda v: (-tips[v], v))[:k]
    vertices, thetas = index.top_k(k)
    assert vertices.tolist() == expected
    assert thetas.tolist() == [tips[v] for v in expected]


@settings(max_examples=40, deadline=None)
@given(tips=tip_arrays)
def test_level_csr_partitions_the_permutation(tips):
    array = np.asarray(tips, dtype=np.int64)
    order = sorted_order(array)
    values, offsets = level_csr(array[order])
    assert offsets[0] == 0 and offsets[-1] == len(tips)
    for i, value in enumerate(values):
        members = order[offsets[i]:offsets[i + 1]]
        assert np.all(array[members] == value)
    # Union of the level slices is exactly the vertex set.
    assert np.array_equal(np.sort(order), np.arange(len(tips)))


class TestValidationAndErrors:
    def test_out_of_range_vertex_raises(self):
        index, _ = _index_for([1, 2, 3])
        with pytest.raises(ServiceError, match="out of range"):
            index.theta(3)
        with pytest.raises(ServiceError, match="out of range"):
            index.theta_batch([0, -1])

    def test_top_k_requires_positive_k(self):
        index, _ = _index_for([1, 2, 3])
        with pytest.raises(ServiceError, match="k >= 1"):
            index.top_k(0)

    def test_community_without_graph_raises(self):
        index, _ = _index_for([1, 2, 3])
        with pytest.raises(ServiceError, match="without graph"):
            index.communities(1)


class TestCommunities:
    def test_matches_hierarchy_components(self, blocks_graph):
        result = tip_decomposition(blocks_graph, "U", algorithm="bup")
        index = TipIndex.from_result(result, graph=blocks_graph)
        k = max(1, result.max_tip_number // 2)
        expected = butterfly_connected_components(
            blocks_graph, result.vertices_with_tip_at_least(k), "U"
        )
        got = index.communities(k)
        as_sets = lambda comps: sorted(tuple(c.tolist()) for c in comps)
        assert as_sets(got) == as_sets(expected)

    def test_vertex_filter_returns_only_its_component(self, blocks_graph):
        result = tip_decomposition(blocks_graph, "U", algorithm="bup")
        index = TipIndex.from_result(result, graph=blocks_graph)
        k = max(1, result.max_tip_number // 2)
        components = index.communities(k)
        assert components, "test graph should have a non-trivial k-tip"
        member = int(components[0][0])
        only = index.communities(k, vertex=member)
        assert len(only) == 1
        assert member in only[0]
        # A vertex below level k belongs to no component.
        below = np.flatnonzero(result.tip_numbers < k)
        if below.size:
            assert index.communities(k, vertex=int(below[0])) == []
