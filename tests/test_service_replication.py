"""Leader/follower replication: convergence, prefix consistency, divergence."""

from __future__ import annotations

import json
import shutil
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.receipt import tip_decomposition
from repro.datasets.generators import planted_blocks
from repro.errors import ReplicationError, ServiceError
from repro.service.artifacts import save_artifact
from repro.service.replication import (
    ReplicationCoordinator,
    ReplicationLog,
    state_fingerprint,
)
from repro.service.server import TipService, create_server


@pytest.fixture(scope="module")
def source(tmp_path_factory):
    graph = planted_blocks(40, 25, [(8, 6), (6, 4)], background_edges=50, seed=3)
    result = tip_decomposition(graph, "U", algorithm="receipt", n_partitions=4)
    path = tmp_path_factory.mktemp("repl") / "blocks.tipidx"
    save_artifact(path, graph, result)
    return path


def _copy(source, tmp_path, name):
    dest = tmp_path / f"{name}.tipidx"
    shutil.copytree(source, dest)
    return dest


def _get(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return json.loads(response.read())


def _post(url, payload):
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"}, method="POST")
    with urllib.request.urlopen(request, timeout=10) as response:
        return json.loads(response.read())


def _serve(service):
    server = create_server([], service=service, port=0)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    return server, f"http://127.0.0.1:{server.server_address[1]}"


BATCHES = (
    {"insert": [[0, 20], [1, 21]]},
    {"insert": [[2, 22]], "delete": [[0, 20]]},
    {"insert": [[3, 23], [4, 24]]},
)


class TestReplicationLog:
    def test_append_assigns_monotone_offsets(self, tmp_path):
        log = ReplicationLog(tmp_path / "a.replog")
        for i in range(3):
            record = log.append({"artifact": "a", "insert": [], "delete": [],
                                 "previous_state": f"s{i}", "state": f"s{i + 1}"})
            assert record["offset"] == i + 1
        reopened = ReplicationLog(tmp_path / "a.replog")
        assert reopened.last_offset == 3
        assert reopened.base_state == "s0"
        assert [r["offset"] for r in reopened.records_from(2)] == [2, 3]

    def test_corrupt_line_is_fatal(self, tmp_path):
        path = tmp_path / "bad.replog"
        path.write_text('{"offset": 1, "artifact": "a", "insert": [], '
                        '"delete": [], "previous_state": "x", "state": "y"}\n'
                        "not json\n", encoding="utf-8")
        with pytest.raises(ReplicationError):
            ReplicationLog(path)

    def test_offset_gap_is_fatal(self, tmp_path):
        path = tmp_path / "gap.replog"
        lines = []
        for offset in (1, 3):
            lines.append(json.dumps({
                "offset": offset, "artifact": "a", "insert": [], "delete": [],
                "previous_state": "x", "state": "y"}))
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(ReplicationError):
            ReplicationLog(path)

    def test_stale_log_rejected_at_leader_startup(self, source, tmp_path):
        artifact = _copy(source, tmp_path, "leader")
        log_path = tmp_path / "stale.replog"
        log = ReplicationLog(log_path)
        log.append({"artifact": "blocks", "insert": [], "delete": [],
                    "previous_state": "old", "state": "does-not-match"})
        service = TipService([artifact])
        with pytest.raises(ReplicationError):
            ReplicationCoordinator(service, role="leader", log_path=log_path)


class TestRoles:
    def test_follower_requires_leader_url(self, source, tmp_path):
        artifact = _copy(source, tmp_path, "f")
        with pytest.raises(ServiceError):
            ReplicationCoordinator(TipService([artifact]), role="follower")

    def test_unknown_role_rejected(self, source, tmp_path):
        artifact = _copy(source, tmp_path, "f")
        with pytest.raises(ServiceError):
            ReplicationCoordinator(TipService([artifact]), role="observer")

    def test_follower_rejects_writes(self, source, tmp_path):
        artifact = _copy(source, tmp_path, "f")
        service = TipService([artifact])
        ReplicationCoordinator(service, role="follower",
                               leader_url="http://127.0.0.1:1")
        with pytest.raises(ServiceError) as excinfo:
            service.handle("/update", {}, dict(BATCHES[0]))
        assert excinfo.value.status == 409

    def test_leader_records_every_update(self, source, tmp_path):
        artifact = _copy(source, tmp_path, "leader")
        service = TipService([artifact])
        coordinator = ReplicationCoordinator(service, role="leader")
        for i, batch in enumerate(BATCHES, start=1):
            payload = service.handle("/update", {}, dict(batch))
            assert payload["replication"]["offset"] == i
        status = coordinator.status()
        assert status["offset"] == 3
        assert status["state"] == state_fingerprint(
            service.index_for(service.artifact_names[0]))


class TestPrefixConsistency:
    def test_follower_reads_are_an_applied_prefix(self, source, tmp_path):
        """After each applied record the follower equals that leader prefix."""
        leader_art = _copy(source, tmp_path, "leader")
        follower_art = _copy(source, tmp_path, "follower")
        leader = TipService([leader_art])
        coordinator = ReplicationCoordinator(leader, role="leader")
        leader_srv, leader_url = _serve(leader)
        name = leader.artifact_names[0]
        probe = np.arange(40)
        try:
            snapshots = [leader.index_for(name).theta_batch(probe).tolist()]
            for batch in BATCHES:
                leader.handle("/update", {}, dict(batch))
                snapshots.append(
                    leader.index_for(name).theta_batch(probe).tolist())
            records = coordinator.log_payload({})["records"]
            assert len(records) == len(BATCHES)

            follower = TipService([follower_art])
            fcoord = ReplicationCoordinator(
                follower, role="follower", leader_url=leader_url)
            for prefix, record in enumerate(records, start=1):
                result = fcoord.handle_push(record)
                assert result["applied"] and result["offset"] == prefix
                got = follower.index_for(name).theta_batch(probe).tolist()
                assert got == snapshots[prefix], f"prefix {prefix}"
            # Re-pushing an old record is an idempotent no-op, not a rewind.
            result = fcoord.handle_push(records[0])
            assert not result["applied"] and result["offset"] == len(records)
        finally:
            leader_srv.shutdown()
            leader_srv.server_close()

    def test_tampered_record_marks_divergence(self, source, tmp_path):
        leader_art = _copy(source, tmp_path, "leader")
        follower_art = _copy(source, tmp_path, "follower")
        leader = TipService([leader_art])
        coordinator = ReplicationCoordinator(leader, role="leader")
        leader_srv, leader_url = _serve(leader)
        try:
            leader.handle("/update", {}, dict(BATCHES[0]))
            record = dict(coordinator.log_payload({})["records"][0])
            record["state"] = "0" * 64  # claims a different post-state

            follower = TipService([follower_art])
            fcoord = ReplicationCoordinator(
                follower, role="follower", leader_url=leader_url)
            with pytest.raises(ReplicationError):
                fcoord.handle_push(record)
            assert fcoord.diverged is not None
            # A diverged follower refuses further records rather than
            # serving wrong tip numbers.
            with pytest.raises(ReplicationError):
                fcoord.handle_push(record)
        finally:
            leader_srv.shutdown()
            leader_srv.server_close()


class TestTopology:
    """Leader + two followers over real HTTP: push, poll, catch-up, metrics."""

    def test_two_followers_converge_to_lag_zero(self, source, tmp_path):
        leader_art = _copy(source, tmp_path, "leader")
        f1_art = _copy(source, tmp_path, "f1")
        f2_art = _copy(source, tmp_path, "f2")

        f1 = TipService([f1_art])
        f1_srv, f1_url = _serve(f1)
        f2 = TipService([f2_art])
        f2_srv, f2_url = _serve(f2)

        leader = TipService([leader_art])
        lcoord = ReplicationCoordinator(
            leader, role="leader", follower_urls=(f1_url, f2_url))
        lcoord.start()
        leader_srv, leader_url = _serve(leader)

        coords = []
        for service in (f1, f2):
            fcoord = ReplicationCoordinator(
                service, role="follower", leader_url=leader_url,
                poll_interval=0.2)
            fcoord.start()
            coords.append(fcoord)
        try:
            # One update before follower 2's first poll plus two after
            # exercise push delivery and snapshot+log catch-up together.
            for batch in BATCHES:
                _post(leader_url + "/update", dict(batch))

            deadline = time.time() + 20
            while time.time() < deadline:
                statuses = [_get(url + "/replication/status")
                            for url in (f1_url, f2_url)]
                if all(s["offset"] == 3 and s["lag"] == 0 for s in statuses):
                    break
                time.sleep(0.1)
            else:
                pytest.fail(f"followers never converged: {statuses}")

            probe = "/theta/batch?vertices=" + ",".join(map(str, range(40)))
            want = _get(leader_url + probe)
            assert _get(f1_url + probe) == want
            assert _get(f2_url + probe) == want

            leader_status = _get(leader_url + "/replication/status")
            assert leader_status["role"] == "leader"
            assert leader_status["lag"] == 0
            acked = [f["acked_offset"]
                     for f in leader_status["followers"].values()]
            assert acked == [3, 3]

            log_payload = _get(leader_url + "/replication/log?from=2")
            assert [r["offset"] for r in log_payload["records"]] == [2, 3]

            # Follower surfaces: write rejection, stats, gauges, SLO.
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post(f1_url + "/update", dict(BATCHES[0]))
            assert excinfo.value.code == 409

            stats = _get(f1_url + "/stats")
            assert stats["replication"]["role"] == "follower"
            assert stats["replication"]["offset"] == 3

            with urllib.request.urlopen(f1_url + "/metrics", timeout=10) as r:
                scrape = r.read().decode()
            for family in ("repro_replication_offset",
                           "repro_replication_lag",
                           "repro_replication_staleness_seconds"):
                assert family in scrape
            slo = _get(f1_url + "/slo")
            staleness = [o for o in slo["objectives"]
                         if o["name"] == "replication-staleness"]
            assert staleness and staleness[0]["state"] in ("ok", "no_data")
        finally:
            lcoord.stop()
            for fcoord in coords:
                fcoord.stop()
            for srv in (leader_srv, f1_srv, f2_srv):
                srv.shutdown()
                srv.server_close()
