"""Leader/follower replication: convergence, prefix consistency, divergence."""

from __future__ import annotations

import json
import shutil
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.receipt import tip_decomposition
from repro.datasets.generators import planted_blocks
from repro.errors import ReplicationError, ServiceError
from repro.service import faults
from repro.service.artifacts import save_artifact
from repro.service.faults import FaultPlan, FaultRule
from repro.service.replication import (
    ReplicationCoordinator,
    ReplicationLog,
    state_fingerprint,
)
from repro.service.server import TipService, create_server


@pytest.fixture(scope="module")
def source(tmp_path_factory):
    graph = planted_blocks(40, 25, [(8, 6), (6, 4)], background_edges=50, seed=3)
    result = tip_decomposition(graph, "U", algorithm="receipt", n_partitions=4)
    path = tmp_path_factory.mktemp("repl") / "blocks.tipidx"
    save_artifact(path, graph, result)
    return path


def _copy(source, tmp_path, name):
    dest = tmp_path / f"{name}.tipidx"
    shutil.copytree(source, dest)
    return dest


def _get(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return json.loads(response.read())


def _post(url, payload):
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"}, method="POST")
    with urllib.request.urlopen(request, timeout=10) as response:
        return json.loads(response.read())


def _serve(service):
    server = create_server([], service=service, port=0)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    return server, f"http://127.0.0.1:{server.server_address[1]}"


BATCHES = (
    {"insert": [[0, 20], [1, 21]]},
    {"insert": [[2, 22]], "delete": [[0, 20]]},
    {"insert": [[3, 23], [4, 24]]},
)


class TestReplicationLog:
    def test_append_assigns_monotone_offsets(self, tmp_path):
        log = ReplicationLog(tmp_path / "a.replog")
        for i in range(3):
            record = log.append({"artifact": "a", "insert": [], "delete": [],
                                 "previous_state": f"s{i}", "state": f"s{i + 1}"})
            assert record["offset"] == i + 1
        reopened = ReplicationLog(tmp_path / "a.replog")
        assert reopened.last_offset == 3
        assert reopened.base_state == "s0"
        assert [r["offset"] for r in reopened.records_from(2)] == [2, 3]

    def test_corrupt_line_is_fatal(self, tmp_path):
        path = tmp_path / "bad.replog"
        path.write_text('{"offset": 1, "artifact": "a", "insert": [], '
                        '"delete": [], "previous_state": "x", "state": "y"}\n'
                        "not json\n", encoding="utf-8")
        with pytest.raises(ReplicationError):
            ReplicationLog(path)

    def test_offset_gap_is_fatal(self, tmp_path):
        path = tmp_path / "gap.replog"
        lines = []
        for offset in (1, 3):
            lines.append(json.dumps({
                "offset": offset, "artifact": "a", "insert": [], "delete": [],
                "previous_state": "x", "state": "y"}))
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(ReplicationError):
            ReplicationLog(path)

    def test_stale_log_rejected_at_leader_startup(self, source, tmp_path):
        artifact = _copy(source, tmp_path, "leader")
        log_path = tmp_path / "stale.replog"
        log = ReplicationLog(log_path)
        log.append({"artifact": "blocks", "insert": [], "delete": [],
                    "previous_state": "old", "state": "does-not-match"})
        service = TipService([artifact])
        with pytest.raises(ReplicationError):
            ReplicationCoordinator(service, role="leader", log_path=log_path)


class TestRoles:
    def test_follower_requires_leader_url(self, source, tmp_path):
        artifact = _copy(source, tmp_path, "f")
        with pytest.raises(ServiceError):
            ReplicationCoordinator(TipService([artifact]), role="follower")

    def test_unknown_role_rejected(self, source, tmp_path):
        artifact = _copy(source, tmp_path, "f")
        with pytest.raises(ServiceError):
            ReplicationCoordinator(TipService([artifact]), role="observer")

    def test_follower_rejects_writes(self, source, tmp_path):
        artifact = _copy(source, tmp_path, "f")
        service = TipService([artifact])
        ReplicationCoordinator(service, role="follower",
                               leader_url="http://127.0.0.1:1")
        with pytest.raises(ServiceError) as excinfo:
            service.handle("/update", {}, dict(BATCHES[0]))
        assert excinfo.value.status == 409

    def test_leader_records_every_update(self, source, tmp_path):
        artifact = _copy(source, tmp_path, "leader")
        service = TipService([artifact])
        coordinator = ReplicationCoordinator(service, role="leader")
        for i, batch in enumerate(BATCHES, start=1):
            payload = service.handle("/update", {}, dict(batch))
            assert payload["replication"]["offset"] == i
        status = coordinator.status()
        assert status["offset"] == 3
        assert status["state"] == state_fingerprint(
            service.index_for(service.artifact_names[0]))


class TestPrefixConsistency:
    def test_follower_reads_are_an_applied_prefix(self, source, tmp_path):
        """After each applied record the follower equals that leader prefix."""
        leader_art = _copy(source, tmp_path, "leader")
        follower_art = _copy(source, tmp_path, "follower")
        leader = TipService([leader_art])
        coordinator = ReplicationCoordinator(leader, role="leader")
        leader_srv, leader_url = _serve(leader)
        name = leader.artifact_names[0]
        probe = np.arange(40)
        try:
            snapshots = [leader.index_for(name).theta_batch(probe).tolist()]
            for batch in BATCHES:
                leader.handle("/update", {}, dict(batch))
                snapshots.append(
                    leader.index_for(name).theta_batch(probe).tolist())
            records = coordinator.log_payload({})["records"]
            assert len(records) == len(BATCHES)

            follower = TipService([follower_art])
            fcoord = ReplicationCoordinator(
                follower, role="follower", leader_url=leader_url)
            for prefix, record in enumerate(records, start=1):
                result = fcoord.handle_push(record)
                assert result["applied"] and result["offset"] == prefix
                got = follower.index_for(name).theta_batch(probe).tolist()
                assert got == snapshots[prefix], f"prefix {prefix}"
            # Re-pushing an old record is an idempotent no-op, not a rewind.
            result = fcoord.handle_push(records[0])
            assert not result["applied"] and result["offset"] == len(records)
        finally:
            leader_srv.shutdown()
            leader_srv.server_close()

    def test_tampered_record_marks_divergence(self, source, tmp_path):
        leader_art = _copy(source, tmp_path, "leader")
        follower_art = _copy(source, tmp_path, "follower")
        leader = TipService([leader_art])
        coordinator = ReplicationCoordinator(leader, role="leader")
        leader_srv, leader_url = _serve(leader)
        try:
            leader.handle("/update", {}, dict(BATCHES[0]))
            record = dict(coordinator.log_payload({})["records"][0])
            record["state"] = "0" * 64  # claims a different post-state

            follower = TipService([follower_art])
            fcoord = ReplicationCoordinator(
                follower, role="follower", leader_url=leader_url)
            with pytest.raises(ReplicationError):
                fcoord.handle_push(record)
            assert fcoord.diverged is not None
            # A diverged follower acknowledges-but-ignores further pushes
            # rather than applying records it cannot verify...
            result = fcoord.handle_push(record)
            assert not result["applied"] and result["diverged"]
            # ...and the poll path recovers it automatically: one sync
            # re-bootstraps from a leader snapshot and lands at lag 0.
            synced = fcoord.sync_once()
            assert fcoord.diverged is None
            assert fcoord.resyncs == 1
            assert synced["lag"] == 0
            name = leader.artifact_names[0]
            probe = np.arange(40)
            assert (follower.index_for(name).theta_batch(probe).tolist()
                    == leader.index_for(name).theta_batch(probe).tolist())
        finally:
            leader_srv.shutdown()
            leader_srv.server_close()


class TestCrashRecovery:
    """Torn-tail truncation, WAL replay, and the killed-writer regression."""

    def _record(self, offset):
        return {"offset": offset, "artifact": "a", "insert": [], "delete": [],
                "previous_state": f"s{offset - 1}", "state": f"s{offset}"}

    def test_torn_partial_line_is_truncated(self, tmp_path):
        log = ReplicationLog(tmp_path / "torn.replog")
        log.append({"artifact": "a", "insert": [], "delete": [],
                    "previous_state": "s0", "state": "s1"})
        with open(log.path, "ab") as handle:
            handle.write(b'{"offset": 2, "artifact": "a", "ins')
        reopened = ReplicationLog(log.path)
        assert reopened.recovered_torn_tail
        assert reopened.last_offset == 1
        # The truncate is physical: a third open sees a clean file and the
        # next append reuses the torn record's offset.
        clean = ReplicationLog(log.path)
        assert not clean.recovered_torn_tail
        record = clean.append({"artifact": "a", "insert": [], "delete": [],
                               "previous_state": "s1", "state": "s2"})
        assert record["offset"] == 2

    def test_torn_newline_only_is_repaired(self, tmp_path):
        """A fully written final record missing only its newline is kept."""
        log = ReplicationLog(tmp_path / "nl.replog")
        log.append({"artifact": "a", "insert": [], "delete": [],
                    "previous_state": "s0", "state": "s1"})
        with open(log.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(self._record(2)))
        reopened = ReplicationLog(log.path)
        assert reopened.recovered_torn_tail
        assert reopened.last_offset == 2
        assert not ReplicationLog(log.path).recovered_torn_tail
        assert ReplicationLog(log.path).last_offset == 2

    def test_writer_killed_mid_append_rejects_batch_and_recovers(
            self, source, tmp_path):
        """Regression: a crash mid-append must not corrupt leader or log.

        The injected ``log.append:corrupt`` fault writes half the record
        and dies.  Write-ahead ordering means the batch was never
        acknowledged and the artifact never swapped, so a restarted
        leader truncates the torn tail and serves byte-identical answers.
        """
        artifact = _copy(source, tmp_path, "leader")
        log_path = tmp_path / "leader.replog"
        service = TipService([artifact])
        ReplicationCoordinator(service, role="leader", log_path=log_path)
        name = service.artifact_names[0]
        probe = np.arange(40)
        before = service.index_for(name).theta_batch(probe).tolist()
        plan = FaultPlan(
            [FaultRule(site="log.append", action="corrupt", count=1)], seed=11)
        with faults.armed(plan):
            with pytest.raises(ReplicationError):
                service.handle("/update", {}, dict(BATCHES[0]))
        # Atomic reject: readers never saw a half-applied batch.
        assert service.index_for(name).theta_batch(probe).tolist() == before
        raw = log_path.read_bytes()
        assert raw and not raw.endswith(b"\n")  # the torn tail is on disk
        # "Restart": a fresh process truncates the tail and serves the
        # exact pre-crash answers, then applies the batch cleanly.
        restarted = TipService([artifact])
        coordinator = ReplicationCoordinator(
            restarted, role="leader", log_path=log_path)
        assert coordinator.log.recovered_torn_tail
        assert coordinator.status()["offset"] == 0
        assert restarted.index_for(name).theta_batch(probe).tolist() == before
        payload = restarted.handle("/update", {}, dict(BATCHES[0]))
        assert payload["replication"]["offset"] == 1

    def test_crash_between_append_and_swap_replays_log(self, source, tmp_path):
        """A batch fsync'd to the log but not the artifact replays at boot."""
        artifact = _copy(source, tmp_path, "leader")
        backup = tmp_path / "pre-crash-artifact"
        shutil.copytree(artifact, backup)
        log_path = tmp_path / "leader.replog"
        service = TipService([artifact])
        ReplicationCoordinator(service, role="leader", log_path=log_path)
        name = service.artifact_names[0]
        probe = np.arange(40)
        for batch in BATCHES[:2]:
            service.handle("/update", {}, dict(batch))
        want = service.index_for(name).theta_batch(probe).tolist()
        # Simulate the crash window: the log kept both records but the
        # artifact directory reverts to its pre-update contents.
        shutil.rmtree(artifact)
        shutil.copytree(backup, artifact)
        restarted = TipService([artifact])
        coordinator = ReplicationCoordinator(
            restarted, role="leader", log_path=log_path)
        assert coordinator.recovered_records == 2
        assert coordinator.status()["offset"] == 2
        assert restarted.index_for(name).theta_batch(probe).tolist() == want

    def test_artifact_changed_outside_log_is_still_fatal(self, source, tmp_path):
        """Replay only covers logged batches; a foreign artifact is fatal."""
        artifact = _copy(source, tmp_path, "leader")
        log_path = tmp_path / "leader.replog"
        service = TipService([artifact])
        ReplicationCoordinator(service, role="leader", log_path=log_path)
        service.handle("/update", {}, dict(BATCHES[0]))
        # Out-of-band mutation: a second service without the log applies a
        # different batch directly to the artifact.
        TipService([artifact]).handle("/update", {}, dict(BATCHES[2]))
        with pytest.raises(ReplicationError):
            ReplicationCoordinator(
                TipService([artifact]), role="leader", log_path=log_path)


class TestCompaction:
    def _chain(self, log, n, start=0):
        for i in range(start, start + n):
            log.append({"artifact": "a", "insert": [], "delete": [],
                        "previous_state": f"s{i}", "state": f"s{i + 1}"})

    def test_compact_drops_prefix_behind_checkpoint(self, tmp_path):
        log = ReplicationLog(tmp_path / "c.replog")
        self._chain(log, 5)
        assert log.compact(retain=2) == 3
        assert log.base_offset == 3
        assert log.checkpoint_state == "s3"
        assert log.last_offset == 5
        assert [r["offset"] for r in log.records_from(1)] == [4, 5]
        # Appends continue the chain past the checkpoint.
        self._chain(log, 1, start=5)
        assert log.last_offset == 6
        # Compacting below the retained count is a no-op.
        assert log.compact(retain=10) == 0

    def test_compacted_log_reloads_from_disk(self, tmp_path):
        log = ReplicationLog(tmp_path / "c.replog")
        self._chain(log, 5)
        log.compact(retain=2)
        reopened = ReplicationLog(tmp_path / "c.replog")
        assert reopened.base_offset == 3
        assert reopened.checkpoint_state == "s3"
        assert reopened.base_state == "s0"  # chain base survives compaction
        assert [r["offset"] for r in reopened.records_from(4)] == [4, 5]

    def test_leader_auto_compacts_past_threshold(self, source, tmp_path):
        artifact = _copy(source, tmp_path, "leader")
        service = TipService([artifact])
        coordinator = ReplicationCoordinator(
            service, role="leader", log_path=tmp_path / "l.replog",
            log_compact_threshold=2)
        for batch in BATCHES:
            service.handle("/update", {}, dict(batch))
        assert coordinator.log.base_offset > 0
        assert coordinator.log.record_count <= 2
        assert coordinator.status()["offset"] == 3

    def test_follower_behind_checkpoint_resyncs_from_snapshot(
            self, source, tmp_path):
        """A follower whose next record was compacted away re-bootstraps."""
        leader_art = _copy(source, tmp_path, "leader")
        follower_art = _copy(source, tmp_path, "follower")
        leader = TipService([leader_art])
        ReplicationCoordinator(
            leader, role="leader", log_path=tmp_path / "l.replog",
            log_compact_threshold=2)
        leader_srv, leader_url = _serve(leader)
        try:
            for batch in BATCHES:
                leader.handle("/update", {}, dict(batch))
            follower = TipService([follower_art])
            fcoord = ReplicationCoordinator(
                follower, role="follower", leader_url=leader_url)
            synced = fcoord.sync_once()
            assert synced["lag"] == 0
            assert fcoord.resyncs == 1
            name = leader.artifact_names[0]
            probe = np.arange(40)
            assert (follower.index_for(name).theta_batch(probe).tolist()
                    == leader.index_for(name).theta_batch(probe).tolist())
        finally:
            leader_srv.shutdown()
            leader_srv.server_close()


class TestTopology:
    """Leader + two followers over real HTTP: push, poll, catch-up, metrics."""

    def test_two_followers_converge_to_lag_zero(self, source, tmp_path):
        leader_art = _copy(source, tmp_path, "leader")
        f1_art = _copy(source, tmp_path, "f1")
        f2_art = _copy(source, tmp_path, "f2")

        f1 = TipService([f1_art])
        f1_srv, f1_url = _serve(f1)
        f2 = TipService([f2_art])
        f2_srv, f2_url = _serve(f2)

        leader = TipService([leader_art])
        lcoord = ReplicationCoordinator(
            leader, role="leader", follower_urls=(f1_url, f2_url))
        lcoord.start()
        leader_srv, leader_url = _serve(leader)

        coords = []
        for service in (f1, f2):
            fcoord = ReplicationCoordinator(
                service, role="follower", leader_url=leader_url,
                poll_interval=0.2)
            fcoord.start()
            coords.append(fcoord)
        try:
            # One update before follower 2's first poll plus two after
            # exercise push delivery and snapshot+log catch-up together.
            for batch in BATCHES:
                _post(leader_url + "/update", dict(batch))

            deadline = time.time() + 20
            while time.time() < deadline:
                statuses = [_get(url + "/replication/status")
                            for url in (f1_url, f2_url)]
                if all(s["offset"] == 3 and s["lag"] == 0 for s in statuses):
                    break
                time.sleep(0.1)
            else:
                pytest.fail(f"followers never converged: {statuses}")

            probe = "/theta/batch?vertices=" + ",".join(map(str, range(40)))
            want = _get(leader_url + probe)
            assert _get(f1_url + probe) == want
            assert _get(f2_url + probe) == want

            leader_status = _get(leader_url + "/replication/status")
            assert leader_status["role"] == "leader"
            assert leader_status["lag"] == 0
            acked = [f["acked_offset"]
                     for f in leader_status["followers"].values()]
            assert acked == [3, 3]

            log_payload = _get(leader_url + "/replication/log?from=2")
            assert [r["offset"] for r in log_payload["records"]] == [2, 3]

            # Follower surfaces: write rejection, stats, gauges, SLO.
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post(f1_url + "/update", dict(BATCHES[0]))
            assert excinfo.value.code == 409

            stats = _get(f1_url + "/stats")
            assert stats["replication"]["role"] == "follower"
            assert stats["replication"]["offset"] == 3

            with urllib.request.urlopen(f1_url + "/metrics", timeout=10) as r:
                scrape = r.read().decode()
            for family in ("repro_replication_offset",
                           "repro_replication_lag",
                           "repro_replication_staleness_seconds"):
                assert family in scrape
            slo = _get(f1_url + "/slo")
            staleness = [o for o in slo["objectives"]
                         if o["name"] == "replication-staleness"]
            assert staleness and staleness[0]["state"] in ("ok", "no_data")
        finally:
            lcoord.stop()
            for fcoord in coords:
                fcoord.stop()
            for srv in (leader_srv, f1_srv, f2_srv):
                srv.shutdown()
                srv.server_close()
