"""Retry policy, circuit breaker, and deadline primitives (fake clocks)."""

from __future__ import annotations

import random

import pytest

from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    ServiceError,
)
from repro.service.resilience import (
    CircuitBreaker,
    CircuitBreakerRegistry,
    Deadline,
    RetryPolicy,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class Flaky:
    """Callable failing the first ``failures`` invocations."""

    def __init__(self, failures, exc=ConnectionError):
        self.failures = failures
        self.exc = exc
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc(f"boom {self.calls}")
        return "ok"


class TestRetryPolicy:
    def _policy(self, **kwargs):
        clock = FakeClock()
        sleeps = []

        def sleep(seconds):
            sleeps.append(seconds)
            clock.advance(seconds)

        defaults = dict(max_attempts=3, base_delay=0.1, max_delay=1.0,
                        budget_seconds=10.0, retryable=(ConnectionError,),
                        rng=random.Random(0), sleep=sleep, clock=clock)
        defaults.update(kwargs)
        return RetryPolicy(**defaults), clock, sleeps

    def test_succeeds_after_retries(self):
        policy, _, sleeps = self._policy()
        flaky = Flaky(2)
        assert policy.call(flaky) == "ok"
        assert flaky.calls == 3
        assert len(sleeps) == 2
        assert policy.retries_total == 2

    def test_exhaustion_reraises_last_exception(self):
        policy, _, _ = self._policy()
        flaky = Flaky(99)
        with pytest.raises(ConnectionError, match="boom 3"):
            policy.call(flaky)
        assert flaky.calls == 3

    def test_non_retryable_propagates_immediately(self):
        policy, _, _ = self._policy()
        flaky = Flaky(99, exc=ValueError)
        with pytest.raises(ValueError):
            policy.call(flaky)
        assert flaky.calls == 1
        assert policy.retries_total == 0

    def test_backoff_is_capped_exponential_with_full_jitter(self):
        policy, _, _ = self._policy(base_delay=0.5, max_delay=1.0)
        for attempt, ceiling in ((0, 0.5), (1, 1.0), (2, 1.0), (5, 1.0)):
            for _ in range(20):
                assert 0.0 <= policy.backoff(attempt) <= ceiling

    def test_budget_stops_retries_early(self):
        # Budget smaller than the first backoff: one attempt, no sleeps.
        policy, _, sleeps = self._policy(
            base_delay=5.0, max_delay=5.0, budget_seconds=0.001)
        with pytest.raises(ConnectionError, match="boom 1"):
            policy.call(Flaky(99))
        assert sleeps == []
        assert policy.budget_exhausted_total == 1
        assert policy.stats()["budget_exhausted_total"] == 1

    def test_on_retry_hook_sees_attempt_and_exception(self):
        policy, _, _ = self._policy()
        seen = []
        policy.call(Flaky(1), on_retry=lambda attempt, exc: seen.append(
            (attempt, str(exc))))
        assert seen == [(0, "boom 1")]

    def test_rejects_bad_configuration(self):
        with pytest.raises(ServiceError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ServiceError):
            RetryPolicy(budget_seconds=0)


class TestCircuitBreaker:
    def _breaker(self, **kwargs):
        clock = FakeClock()
        defaults = dict(failure_threshold=3, reset_seconds=10.0, clock=clock)
        defaults.update(kwargs)
        return CircuitBreaker("test", **defaults), clock

    def test_opens_after_threshold_consecutive_failures(self):
        breaker, _ = self._breaker()
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()
        assert breaker.opened_total == 1

    def test_success_resets_the_streak(self):
        breaker, _ = self._breaker()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_open_short_circuits_with_retry_after(self):
        breaker, clock = self._breaker()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(4.0)
        with pytest.raises(CircuitOpenError) as excinfo:
            breaker.call(lambda: "never")
        assert excinfo.value.status == 503
        assert excinfo.value.retry_after == pytest.approx(6.0)
        assert breaker.short_circuited_total == 1
        assert breaker.open_for_seconds() == pytest.approx(4.0)

    def test_half_open_probe_success_closes(self):
        breaker, clock = self._breaker()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.state == "half-open"
        assert breaker.call(lambda: "ok") == "ok"
        assert breaker.state == "closed"

    def test_half_open_probe_failure_reopens_full_timeout(self):
        breaker, clock = self._breaker()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        with pytest.raises(ConnectionError):
            breaker.call(Flaky(99))
        assert breaker.state == "open"
        assert breaker.opened_total == 2
        # The reset window restarted at the probe failure.
        clock.advance(9.0)
        assert breaker.state == "open"
        clock.advance(1.0)
        assert breaker.state == "half-open"

    def test_call_counts_failures_and_successes(self):
        breaker, _ = self._breaker(failure_threshold=2)
        flaky = Flaky(2)
        for _ in range(2):
            with pytest.raises(ConnectionError):
                breaker.call(flaky)
        assert breaker.state == "open"
        snapshot = breaker.snapshot()
        assert snapshot["state"] == "open"
        assert snapshot["consecutive_failures"] == 2

    def test_rejects_bad_configuration(self):
        with pytest.raises(ServiceError):
            CircuitBreaker("x", failure_threshold=0)
        with pytest.raises(ServiceError):
            CircuitBreaker("x", reset_seconds=0)


class TestCircuitBreakerRegistry:
    def test_get_creates_once_and_configure_applies_forward(self):
        clock = FakeClock()
        registry = CircuitBreakerRegistry(
            failure_threshold=2, reset_seconds=5.0, clock=clock)
        breaker = registry.get("push:a")
        assert registry.get("push:a") is breaker
        assert breaker.failure_threshold == 2
        registry.configure(failure_threshold=7, reset_seconds=1.5)
        assert registry.get("push:b").failure_threshold == 7
        with pytest.raises(ServiceError):
            registry.configure(failure_threshold=0)
        with pytest.raises(ServiceError):
            registry.configure(reset_seconds=0)

    def test_open_count_and_oldest_open_seconds(self):
        clock = FakeClock()
        registry = CircuitBreakerRegistry(
            failure_threshold=1, reset_seconds=100.0, clock=clock)
        assert registry.open_count() == 0
        assert registry.oldest_open_seconds() == 0.0
        registry.get("a").record_failure()
        clock.advance(3.0)
        registry.get("b").record_failure()
        clock.advance(2.0)
        assert registry.open_count() == 2
        assert registry.oldest_open_seconds() == pytest.approx(5.0)
        names = [entry["name"] for entry in registry.snapshot()]
        assert names == ["a", "b"]


class TestDeadline:
    def test_lifecycle_with_fake_clock(self):
        clock = FakeClock()
        deadline = Deadline(0.5, clock=clock)
        assert not deadline.expired()
        assert deadline.remaining() == pytest.approx(0.5)
        clock.advance(0.3)
        assert deadline.remaining() == pytest.approx(0.2)
        deadline.raise_if_expired()  # still inside the budget
        clock.advance(0.3)
        assert deadline.expired() and deadline.remaining() == 0.0
        with pytest.raises(DeadlineExceededError) as excinfo:
            deadline.raise_if_expired("/theta")
        assert excinfo.value.status == 503
        assert "/theta" in str(excinfo.value)

    def test_from_params(self):
        assert Deadline.from_params({}) is None
        assert Deadline.from_params({"deadline_ms": []}) is None
        deadline = Deadline.from_params({"deadline_ms": ["250"]})
        assert deadline is not None and deadline.seconds == pytest.approx(0.25)
        assert Deadline.from_params(
            {"deadline_ms": 100}).seconds == pytest.approx(0.1)

    def test_from_params_rejects_bad_values(self):
        for raw in ("soon", "0", "-5", ""):
            with pytest.raises(ServiceError) as excinfo:
                Deadline.from_params({"deadline_ms": raw})
            assert excinfo.value.status == 400

    def test_rejects_non_positive_seconds(self):
        with pytest.raises(ServiceError):
            Deadline(0.0)
