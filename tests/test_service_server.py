"""HTTP serving tests: every endpoint, error surfaces, offline parity."""

from __future__ import annotations

import http.client
import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.receipt import tip_decomposition
from repro.datasets.generators import planted_blocks
from repro.errors import ServiceError
from repro.service.artifacts import load_artifact, save_artifact
from repro.service.index import TipIndex
from repro.service.server import ENDPOINTS, TipService, create_server


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    graph = planted_blocks(40, 25, [(8, 6), (6, 4)], background_edges=50, seed=3)
    result = tip_decomposition(graph, "U", algorithm="receipt", n_partitions=4)
    path = tmp_path_factory.mktemp("serve") / "blocks.tipidx"
    save_artifact(path, graph, result)
    return path, result


@pytest.fixture(scope="module")
def server(artifact):
    path, _ = artifact
    httpd = create_server([path], port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    yield httpd
    httpd.shutdown()
    httpd.server_close()


@pytest.fixture(scope="module")
def base_url(server):
    host, port = server.server_address[0], server.server_address[1]
    return f"http://{host}:{port}"


def _get(base_url, path):
    with urllib.request.urlopen(base_url + path, timeout=10) as response:
        return response.status, json.loads(response.read())


def _post(base_url, path, payload):
    request = urllib.request.Request(
        base_url + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, json.loads(response.read())


class TestEndpoints:
    def test_healthz(self, base_url):
        status, payload = _get(base_url, "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["artifacts"] == ["planted-blocks.U"]

    def test_stats_reports_cache_and_artifacts(self, base_url):
        status, payload = _get(base_url, "/stats")
        assert status == 200
        summary = payload["artifacts"]["planted-blocks.U"]
        assert summary["n_vertices"] == 40
        assert "hits" in payload["cache"]
        assert payload["requests"]["/stats"] >= 1

    def test_theta_point(self, base_url, artifact):
        _, result = artifact
        status, payload = _get(base_url, "/theta?vertex=7")
        assert status == 200
        assert payload == {"vertex": 7, "theta": int(result.tip_numbers[7])}

    def test_theta_batch_get_and_post_agree(self, base_url, artifact):
        _, result = artifact
        vertices = [0, 3, 9, 21]
        status_get, via_get = _get(
            base_url, "/theta/batch?vertices=" + ",".join(map(str, vertices)))
        status_post, via_post = _post(base_url, "/theta/batch", {"vertices": vertices})
        assert status_get == status_post == 200
        assert via_get == via_post
        assert via_get["thetas"] == [int(result.tip_numbers[v]) for v in vertices]

    def test_top_k(self, base_url, artifact):
        _, result = artifact
        status, payload = _get(base_url, "/top-k?k=5")
        assert status == 200
        expected = sorted(range(result.n_vertices),
                          key=lambda v: (-int(result.tip_numbers[v]), v))[:5]
        assert payload["vertices"] == expected

    def test_k_tip_with_limit(self, base_url, artifact):
        _, result = artifact
        k = max(1, result.max_tip_number // 2)
        status, payload = _get(base_url, f"/k-tip?k={k}&limit=3")
        assert status == 200
        expected = result.vertices_with_tip_at_least(k)
        assert payload["size"] == expected.size
        assert payload["vertices"] == expected[:3].tolist()
        assert payload["truncated"] == (expected.size > 3)

    def test_community(self, base_url, artifact):
        _, result = artifact
        k = result.max_tip_number
        status, payload = _get(base_url, f"/community?k={k}")
        assert status == 200
        assert payload["n_communities"] >= 1
        members = {v for community in payload["communities"] for v in community}
        assert members == set(result.vertices_with_tip_at_least(k).tolist())


class TestErrors:
    def _error(self, base_url, path):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(base_url, path)
        return excinfo.value.code, json.loads(excinfo.value.read())

    def test_unknown_route_404(self, base_url):
        code, payload = self._error(base_url, "/not-an-endpoint")
        assert code == 404
        for endpoint in ENDPOINTS:
            assert endpoint in payload["error"]

    def test_out_of_range_vertex_400(self, base_url):
        code, payload = self._error(base_url, "/theta?vertex=100000")
        assert code == 400
        assert "out of range" in payload["error"]

    def test_missing_parameter_400(self, base_url):
        code, payload = self._error(base_url, "/top-k")
        assert code == 400
        assert "k" in payload["error"]

    def test_non_integer_parameter_400(self, base_url):
        code, _ = self._error(base_url, "/theta?vertex=abc")
        assert code == 400

    def test_unknown_artifact_404(self, base_url):
        code, payload = self._error(base_url, "/theta?vertex=1&artifact=ghost")
        assert code == 404
        assert "unknown artifact" in payload["error"]

    def test_float_and_bool_vertices_rejected_not_truncated(self, base_url, artifact):
        path, _ = artifact
        service = TipService([path])
        for bad in ([3.7], [True], ["2.5"]):
            with pytest.raises(ServiceError, match="integers"):
                service.handle("/theta/batch", {}, {"vertices": bad})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(base_url, "/theta/batch", {"vertices": [1.5]})
        assert excinfo.value.code == 400

    def test_stats_answers_from_manifest_without_loading(self, artifact):
        path, _ = artifact
        service = TipService([path])
        payload = service.handle("/stats")
        summary = payload["artifacts"]["planted-blocks.U"]
        assert summary["loaded"] is False  # no index load happened
        assert summary["n_vertices"] == 40
        assert payload["cache"]["misses"] == 0
        # A real query loads it; /stats then reports it as live.
        service.handle("/theta", {"vertex": "0"})
        assert service.handle("/stats")["artifacts"]["planted-blocks.U"]["loaded"] is True

    def test_oversized_batch_400(self, artifact, monkeypatch):
        import repro.service.server as server_module

        path, _ = artifact
        service = TipService([path])
        monkeypatch.setattr(server_module, "MAX_RESPONSE_VERTICES", 3)
        with pytest.raises(ServiceError, match="per-request cap"):
            service.handle("/theta/batch", {"vertices": "0,1,2,3"})

    def test_oversized_post_body_413(self, base_url):
        request = urllib.request.Request(
            base_url + "/theta/batch",
            data=b"x" * 16,
            headers={"Content-Length": str(64 * 1024 * 1024)},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 413

    def test_negative_limit_400(self, base_url):
        code, payload = self._error(base_url, "/k-tip?k=0&limit=-5")
        assert code == 400
        assert "non-negative" in payload["error"]

    def test_top_k_above_response_cap_400(self, base_url):
        code, payload = self._error(base_url, "/top-k?k=2000000000")
        assert code == 400
        assert "capped" in payload["error"]

    def test_invalid_json_body_400(self, base_url):
        request = urllib.request.Request(
            base_url + "/theta/batch", data=b"{broken", method="POST")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400


class TestOfflineParity:
    """`repro query` answers must equal the HTTP API's byte for byte."""

    def test_service_handle_matches_http(self, base_url, artifact):
        path, _ = artifact
        offline = TipService([path])
        for route in ("/healthz", "/theta?vertex=5", "/top-k?k=4", "/k-tip?k=1",
                      "/theta/batch?vertices=1,2,3"):
            bare, _, query = route.partition("?")
            params = dict(pair.split("=") for pair in query.split("&")) if query else {}
            _, via_http = _get(base_url, route)
            via_offline = json.loads(json.dumps(
                offline.handle(bare, params), default=_jsonable_default))
            assert via_offline == via_http, route

    def test_index_queries_match_server(self, base_url, artifact):
        path, _ = artifact
        index = TipIndex.from_artifact(load_artifact(path))
        _, payload = _get(base_url, "/theta/batch?vertices=0,1,2,3,4")
        assert payload["thetas"] == index.theta_batch([0, 1, 2, 3, 4]).tolist()


def _jsonable_default(value):
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.integer, np.floating)):
        return value.item()
    raise TypeError(type(value))


class TestThreadedKeepAlive:
    """The threaded transport speaks real HTTP/1.1 with persistent conns."""

    def test_http_11_connection_is_reused(self, server):
        host, port = server.server_address[0], server.server_address[1]
        connection = http.client.HTTPConnection(host, port, timeout=10)
        try:
            for vertex in (1, 2, 3):
                connection.request("GET", f"/theta?vertex={vertex}")
                response = connection.getresponse()
                assert response.version == 11
                assert response.getheader("Connection") != "close"
                assert json.loads(response.read())["vertex"] == vertex
        finally:
            connection.close()

    def test_server_socket_options(self, server):
        assert server.allow_reuse_address
        assert server.daemon_threads

    def test_error_bodies_carry_machine_readable_status(self, base_url):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(base_url, "/theta?vertex=100000")
        payload = json.loads(excinfo.value.read())
        assert payload["status"] == 400
        assert "out of range" in payload["error"]

    def test_oversized_body_closes_keep_alive_connection(self, server):
        # An unread oversized body would desync the next pipelined request;
        # the server must answer 413 and then close.
        host, port = server.server_address[0], server.server_address[1]
        connection = http.client.HTTPConnection(host, port, timeout=10)
        try:
            connection.request(
                "POST", "/theta/batch", body=None,
                headers={"Content-Length": str(64 * 1024 * 1024)})
            response = connection.getresponse()
            assert response.status == 413
            assert response.getheader("Connection") == "close"
            assert json.loads(response.read())["status"] == 413
        finally:
            connection.close()


class TestServiceConstruction:
    def test_multiple_artifacts_require_name(self, artifact, tmp_path):
        path, result = artifact
        graph = planted_blocks(40, 25, [(8, 6), (6, 4)], background_edges=50, seed=3)
        second = tmp_path / "again.tipidx"
        save_artifact(second, graph, result)
        service = TipService([path, second])
        assert len(service.artifact_names) == 2
        with pytest.raises(ServiceError, match="multiple artifacts"):
            service.handle("/theta", {"vertex": "1"})
        payload = service.handle(
            "/theta", {"vertex": "1", "artifact": service.artifact_names[0]})
        assert payload["vertex"] == 1

    def test_empty_artifact_list_rejected(self):
        with pytest.raises(ServiceError, match="no artifacts"):
            TipService([])

    def test_community_candidate_cap(self, artifact, monkeypatch):
        import repro.service.server as server_module

        path, _ = artifact
        service = TipService([path])
        monkeypatch.setattr(server_module, "MAX_COMMUNITY_VERTICES", 2)
        with pytest.raises(ServiceError, match="capped"):
            service.handle("/community", {"k": "0"})

    def test_stats_histogram_flag_parsing(self, artifact):
        path, _ = artifact
        service = TipService([path])
        name = service.artifact_names[0]
        with_flag = service.handle("/stats", {"histogram": "1"})
        assert "histogram" in with_flag["artifacts"][name]
        for off in ({}, {"histogram": "0"}, {"histogram": "false"}):
            payload = service.handle("/stats", dict(off))
            assert "histogram" not in payload["artifacts"][name]
