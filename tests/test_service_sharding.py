"""θ-range sharding: exactness vs the unsharded index, plans, HTTP parity."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.receipt import tip_decomposition
from repro.datasets.generators import planted_blocks
from repro.errors import ArtifactError, ServiceError
from repro.service.artifacts import load_artifact, save_artifact
from repro.service.index import TipIndex
from repro.service.server import TipService, create_server
from repro.service.sharding import (
    ShardRouter,
    plan_boundaries,
    plan_shards,
    read_shard_plan,
    write_shard_plan,
)


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    graph = planted_blocks(40, 25, [(8, 6), (6, 4)], background_edges=50, seed=3)
    result = tip_decomposition(graph, "U", algorithm="receipt", n_partitions=4)
    path = tmp_path_factory.mktemp("shard") / "blocks.tipidx"
    save_artifact(path, graph, result)
    return path


@pytest.fixture(scope="module")
def index(artifact):
    return TipIndex.from_artifact(load_artifact(artifact))


def _assert_router_matches_index(router: ShardRouter, index: TipIndex) -> None:
    """Every query surface must be bit-identical to the unsharded index."""
    vertices = np.arange(index.n_vertices)
    assert np.array_equal(router.theta_batch(vertices), index.theta_batch(vertices))
    for vertex in (0, index.n_vertices // 2, index.n_vertices - 1):
        assert router.theta(vertex) == index.theta(vertex)
    assert router.histogram() == index.histogram()
    assert np.array_equal(router.levels(), index.levels())
    for k in range(1, index.n_vertices + 1):
        got_ids, got_thetas = router.top_k(k)
        want_ids, want_thetas = index.top_k(k)
        assert np.array_equal(got_ids, want_ids), f"top_k({k}) ids"
        assert np.array_equal(got_thetas, want_thetas), f"top_k({k}) thetas"
    probes = sorted({0, 1, index.max_tip_number // 2, index.max_tip_number,
                     index.max_tip_number + 1})
    for k in probes:
        assert router.k_tip_size(k) == index.k_tip_size(k)
        assert np.array_equal(router.k_tip_members(k), index.k_tip_members(k))
        for limit in (0, 1, 3, 10_000):
            assert np.array_equal(
                router.k_tip_members(k, limit=limit),
                index.k_tip_members(k, limit=limit)), f"k_tip_members({k}, {limit})"


class TestExactness:
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(n_shards=st.sampled_from([1, 2, 3, 5]))
    def test_any_shard_count_is_bit_identical(self, index, n_shards):
        router = ShardRouter.from_index(index, n_shards)
        _assert_router_matches_index(router, index)

    def test_more_shards_than_levels_clamps(self, index):
        router = ShardRouter.from_index(index, index.n_levels + 10)
        assert router.n_shards <= index.n_levels
        _assert_router_matches_index(router, index)

    def test_boundaries_are_level_aligned_and_cover(self, index):
        offsets = index.level_offsets
        cuts = plan_boundaries(offsets, 3)
        assert cuts[0] == 0 and cuts[-1] == offsets[-1]
        assert all(c in set(int(o) for o in offsets) for c in cuts)
        assert list(cuts) == sorted(set(cuts))

    def test_bad_shard_count_rejected(self, index):
        with pytest.raises(ServiceError):
            ShardRouter.from_index(index, 0)

    def test_validation_errors_match_the_index(self, index):
        router = ShardRouter.from_index(index, 3)
        for bad in (-1, index.n_vertices):
            with pytest.raises(ServiceError) as from_router:
                router.theta(bad)
            with pytest.raises(ServiceError) as from_index:
                index.theta(bad)
            assert str(from_router.value) == str(from_index.value)

    def test_router_is_read_only(self, index):
        router = ShardRouter.from_index(index, 2)
        with pytest.raises(ServiceError) as excinfo:
            router.apply_delta(inserts=[(0, 0)])
        assert excinfo.value.status == 409


class TestPersistedPlan:
    def test_write_load_round_trip(self, artifact, index, tmp_path):
        out = tmp_path / "blocks.tipshards"
        payload = write_shard_plan(artifact, out, 3)
        assert payload["kind"] == "tip-shard-plan"
        assert payload["n_shards"] == len(payload["shards"])
        router = ShardRouter.load(out)
        assert router.fingerprint == payload["fingerprint"]
        _assert_router_matches_index(router, index)

    def test_read_shard_plan_validates(self, artifact, tmp_path):
        out = tmp_path / "plan.tipshards"
        write_shard_plan(artifact, out, 2)
        payload = read_shard_plan(out)
        assert payload["format_version"] == 1
        with pytest.raises(ArtifactError):
            read_shard_plan(tmp_path / "missing.tipshards")
        with pytest.raises(ArtifactError):
            write_shard_plan(artifact, out, 2)  # overwrite not requested

    def test_plan_has_no_graph_so_communities_404(self, artifact, tmp_path):
        out = tmp_path / "blocks.tipshards"
        write_shard_plan(artifact, out, 2)
        router = ShardRouter.load(out)
        with pytest.raises(ServiceError) as excinfo:
            router.communities(1)
        assert excinfo.value.status == 404

    def test_in_memory_plan_keeps_the_graph(self, artifact, index):
        router = plan_shards(artifact, 2)
        k = index.max_tip_number
        got = [sorted(c.tolist()) for c in router.communities(k)]
        want = [sorted(c.tolist()) for c in index.communities(k)]
        assert got == want


class TestServedSharding:
    """The HTTP surface answers byte-identically with and without shards."""

    @pytest.fixture()
    def pair(self, artifact):
        plain = TipService([artifact])
        sharded = TipService([artifact], shards=3)
        plain_srv = create_server([], service=plain, port=0)
        shard_srv = create_server([], service=sharded, port=0)
        for srv in (plain_srv, shard_srv):
            threading.Thread(target=srv.serve_forever, daemon=True).start()
        yield (f"http://127.0.0.1:{plain_srv.server_address[1]}",
               f"http://127.0.0.1:{shard_srv.server_address[1]}")
        for srv in (plain_srv, shard_srv):
            srv.shutdown()
            srv.server_close()

    def _body(self, base, route):
        with urllib.request.urlopen(base + route, timeout=10) as response:
            return response.read()

    def test_query_routes_byte_identical(self, pair):
        plain, sharded = pair
        for route in ("/theta?vertex=7", "/theta/batch?vertices=0,3,9,21",
                      "/top-k?k=5", "/k-tip?k=1&limit=3",
                      "/stats?histogram=1"):
            if route.startswith("/stats"):
                name = "planted-blocks.U"
                left = json.loads(self._body(plain, route))
                right = json.loads(self._body(sharded, route))
                assert (left["artifacts"][name]["histogram"]
                        == right["artifacts"][name]["histogram"])
            else:
                assert self._body(plain, route) == self._body(sharded, route), route

    def test_stats_reports_sharding_mode(self, pair):
        _, sharded = pair
        payload = json.loads(self._body(sharded, "/stats"))
        summary = payload["artifacts"]["planted-blocks.U"]
        assert summary["sharding"]["mode"] == "in-memory"
        assert summary["sharding"]["requested_shards"] == 3

    def test_served_plan_rejects_updates(self, artifact, tmp_path):
        out = tmp_path / "blocks.tipshards"
        write_shard_plan(artifact, out, 2)
        service = TipService([out])
        with pytest.raises(ServiceError) as excinfo:
            service.handle("/update", {}, {"insert": [[0, 20]]})
        assert excinfo.value.status == 409

    def test_update_invalidates_shard_views(self, artifact, tmp_path):
        import shutil

        copy = tmp_path / "mutable.tipidx"
        shutil.copytree(artifact, copy)
        service = TipService([copy], shards=2)
        service.handle("/theta/batch", {"vertices": ",".join(map(str, range(40)))})
        service.handle("/update", {}, {"insert": [[0, 20], [1, 21]]})
        after = service.handle("/theta/batch",
                               {"vertices": ",".join(map(str, range(40)))})
        fresh = TipIndex.from_artifact(load_artifact(copy))
        assert np.array_equal(np.asarray(after["thetas"]),
                              fresh.theta_batch(np.arange(40)))


class TestDegradedGather:
    """Deadline-bounded scatter/gather: exact, partial, or honest 503."""

    def _router(self, index, n_shards=3):
        return ShardRouter.from_index(index, n_shards)

    def test_no_deadline_is_byte_identical(self, index):
        router = self._router(index)
        vertices = np.arange(index.n_vertices)
        thetas, unresolved = router.theta_batch_degraded(vertices)
        assert unresolved == []
        assert isinstance(thetas, np.ndarray)
        assert np.array_equal(thetas, index.theta_batch(vertices))

    def test_generous_deadline_is_byte_identical(self, index):
        from repro.service.resilience import Deadline

        router = self._router(index)
        vertices = np.arange(index.n_vertices)
        thetas, unresolved = router.theta_batch_degraded(
            vertices, deadline=Deadline(30.0))
        assert unresolved == []
        assert np.array_equal(thetas, index.theta_batch(vertices))

    def test_expired_deadline_skips_remaining_shards(self, index):
        from repro.service.resilience import Deadline

        clock_value = [0.0]
        deadline = Deadline(0.05, clock=lambda: clock_value[0])
        clock_value[0] = 1.0  # budget already spent before the first shard
        router = self._router(index)
        vertices = np.arange(index.n_vertices)
        thetas, unresolved = router.theta_batch_degraded(
            vertices, deadline=deadline)
        assert unresolved == list(range(router.n_shards))
        assert thetas == [None] * index.n_vertices

    def test_injected_shard_fault_yields_partial_answer(self, index):
        from repro.service import faults
        from repro.service.faults import FaultPlan, FaultRule

        router = self._router(index)
        vertices = np.arange(index.n_vertices)
        want = index.theta_batch(vertices)
        plan = FaultPlan(
            [FaultRule(site="shard.gather", action="error", count=1)], seed=2)
        with faults.armed(plan):
            thetas, unresolved = router.theta_batch_degraded(vertices)
        assert len(unresolved) == 1
        owners = router._routing[vertices]
        for vertex, theta in zip(vertices, thetas):
            if int(owners[vertex]) in unresolved:
                assert theta is None
            else:
                assert theta == int(want[vertex])

    def test_single_shard_is_all_or_nothing(self, index):
        from repro.errors import FaultInjectedError
        from repro.service import faults
        from repro.service.faults import FaultPlan, FaultRule

        router = self._router(index, n_shards=1)
        vertices = np.arange(index.n_vertices)
        plan = FaultPlan(
            [FaultRule(site="shard.gather", action="error", count=1)], seed=2)
        with faults.armed(plan):
            with pytest.raises(FaultInjectedError):
                router.theta_batch_degraded(vertices)
        thetas, unresolved = router.theta_batch_degraded(vertices)
        assert unresolved == []
        assert np.array_equal(thetas, index.theta_batch(vertices))


class TestServedDeadlines:
    """The /theta/batch deadline surface over a sharded TipService."""

    def _service(self, artifact, tmp_path, shards=3):
        import shutil

        copy = tmp_path / "served.tipidx"
        shutil.copytree(artifact, copy)
        return TipService([copy], shards=shards)

    def test_deadline_param_with_time_left_is_exact(self, artifact, tmp_path):
        service = self._service(artifact, tmp_path)
        probe = {"vertices": ",".join(map(str, range(40)))}
        want = service.handle("/theta/batch", dict(probe))
        got = service.handle("/theta/batch",
                             dict(probe, deadline_ms="30000"))
        assert json.dumps(got, sort_keys=True, default=str) == \
            json.dumps(want, sort_keys=True, default=str)
        assert "degraded" not in got

    def test_shard_fault_with_deadline_degrades(self, artifact, tmp_path):
        from repro.service import faults
        from repro.service.faults import FaultPlan, FaultRule

        service = self._service(artifact, tmp_path)
        probe = {"vertices": ",".join(map(str, range(40))),
                 "deadline_ms": "30000"}
        plan = FaultPlan(
            [FaultRule(site="shard.gather", action="error", count=1)], seed=2)
        with faults.armed(plan):
            payload = service.handle("/theta/batch", dict(probe))
        assert payload["degraded"] is True
        assert payload["unresolved_shards"]
        assert payload["resolved"] < 40
        assert any(theta is None for theta in payload["thetas"])
        assert service.handle("/stats")["resilience"]["degraded_total"] == 1

    def test_all_shards_failing_is_a_503(self, artifact, tmp_path):
        from repro.errors import DeadlineExceededError
        from repro.service import faults
        from repro.service.faults import FaultPlan, FaultRule

        service = self._service(artifact, tmp_path)
        probe = {"vertices": ",".join(map(str, range(40))),
                 "deadline_ms": "30000"}
        plan = FaultPlan(
            [FaultRule(site="shard.gather", action="error")], seed=2)
        with faults.armed(plan):
            with pytest.raises(DeadlineExceededError) as excinfo:
                service.handle("/theta/batch", dict(probe))
        assert excinfo.value.status == 503
        assert excinfo.value.retry_after > 0
        stats = service.handle("/stats")["resilience"]
        assert stats["deadline_exceeded_total"] == 1

    def test_bad_deadline_is_a_400(self, artifact, tmp_path):
        service = self._service(artifact, tmp_path)
        for bad in ("soon", "0", "-10"):
            with pytest.raises(ServiceError) as excinfo:
                service.handle(
                    "/theta/batch",
                    {"vertices": "0,1", "deadline_ms": bad})
            assert excinfo.value.status == 400
