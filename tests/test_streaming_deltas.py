"""CSR patch kernels and the validated edge-update batch log."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import StreamingError
from repro.graph.bipartite import BipartiteGraph
from repro.kernels.csr import (
    csr_entry_keys,
    delete_csr_entries,
    insert_csr_entries,
    locate_csr_entries,
)
from repro.service.artifacts import graph_fingerprint
from repro.streaming import EdgeBatch, apply_batch, validate_batch


def _graph():
    edges = [(0, 0), (0, 1), (1, 0), (1, 1), (1, 2), (2, 2), (3, 0), (3, 3)]
    return BipartiteGraph(4, 4, edges)


# ----------------------------------------------------------------------
# kernels.csr patch primitives
# ----------------------------------------------------------------------
class TestCsrPatchKernels:
    def test_entry_keys_are_globally_sorted(self):
        offsets, neighbors = _graph().csr("U")
        keys = csr_entry_keys(offsets, neighbors, 4)
        assert np.all(np.diff(keys) > 0)

    def test_locate_finds_present_and_absent(self):
        offsets, neighbors = _graph().csr("U")
        positions, present = locate_csr_entries(
            offsets, neighbors, np.array([1, 1, 2]), np.array([2, 3, 2]), 4
        )
        assert present.tolist() == [True, False, True]
        assert neighbors[positions[0]] == 2
        assert neighbors[positions[2]] == 2

    def test_insert_keeps_rows_sorted(self):
        offsets, neighbors = _graph().csr("U")
        new_offsets, new_neighbors = insert_csr_entries(
            offsets, neighbors, np.array([0, 2, 2]), np.array([3, 0, 1]), 4
        )
        assert new_neighbors.shape[0] == neighbors.shape[0] + 3
        for row in range(4):
            row_values = new_neighbors[new_offsets[row]: new_offsets[row + 1]]
            assert np.all(np.diff(row_values) > 0)
        assert new_neighbors[new_offsets[0]: new_offsets[1]].tolist() == [0, 1, 3]

    def test_insert_rejects_existing_and_duplicates(self):
        offsets, neighbors = _graph().csr("U")
        with pytest.raises(ValueError, match="already present"):
            insert_csr_entries(offsets, neighbors, np.array([0]), np.array([0]), 4)
        with pytest.raises(ValueError, match="duplicate"):
            insert_csr_entries(offsets, neighbors, np.array([2, 2]), np.array([0, 0]), 4)

    def test_delete_rejects_missing(self):
        offsets, neighbors = _graph().csr("U")
        with pytest.raises(ValueError, match="not present"):
            delete_csr_entries(offsets, neighbors, np.array([0]), np.array([3]), 4)

    def test_delete_then_insert_roundtrip(self):
        offsets, neighbors = _graph().csr("U")
        deleted = delete_csr_entries(offsets, neighbors, np.array([1]), np.array([1]), 4)
        restored = insert_csr_entries(*deleted, np.array([1]), np.array([1]), 4)
        assert np.array_equal(restored[0], offsets)
        assert np.array_equal(restored[1], neighbors)


# ----------------------------------------------------------------------
# EdgeBatch validation
# ----------------------------------------------------------------------
class TestBatchValidation:
    def test_out_of_range_rejected(self):
        graph = _graph()
        with pytest.raises(StreamingError, match="out of range"):
            validate_batch(graph, EdgeBatch.from_lists(inserts=[(7, 0)]))
        with pytest.raises(StreamingError, match="out of range"):
            validate_batch(graph, EdgeBatch.from_lists(deletes=[(0, -1)]))

    def test_duplicate_within_list_rejected(self):
        with pytest.raises(StreamingError, match="more than once"):
            validate_batch(_graph(), EdgeBatch.from_lists(inserts=[(2, 0), (2, 0)]))

    def test_insert_and_delete_overlap_rejected(self):
        with pytest.raises(StreamingError, match="both the insert and the delete"):
            validate_batch(
                _graph(), EdgeBatch.from_lists(inserts=[(0, 0)], deletes=[(0, 0)])
            )

    def test_existing_insert_rejected(self):
        with pytest.raises(StreamingError, match="already exists"):
            validate_batch(_graph(), EdgeBatch.from_lists(inserts=[(0, 0)]))

    def test_missing_delete_rejected(self):
        with pytest.raises(StreamingError, match="does not exist"):
            validate_batch(_graph(), EdgeBatch.from_lists(deletes=[(0, 3)]))

    def test_malformed_shape_rejected(self):
        with pytest.raises(StreamingError, match="pairs"):
            EdgeBatch.from_lists(inserts=[(1, 2, 3)])

    def test_failed_batch_leaves_graph_untouched(self):
        graph = _graph()
        before = graph_fingerprint(graph)
        with pytest.raises(StreamingError):
            apply_batch(graph, EdgeBatch.from_lists(inserts=[(2, 0)], deletes=[(0, 3)]))
        assert graph_fingerprint(graph) == before


# ----------------------------------------------------------------------
# apply_batch == full rebuild
# ----------------------------------------------------------------------
class TestApplyBatch:
    def test_empty_batch_is_identity(self):
        graph = _graph()
        assert apply_batch(graph, EdgeBatch()) is graph

    def test_patch_matches_rebuild(self):
        graph = _graph()
        batch = EdgeBatch.from_lists(inserts=[(2, 0), (0, 2)], deletes=[(1, 1), (3, 3)])
        patched = apply_batch(graph, batch)
        rebuilt = BipartiteGraph(
            4, 4, [(0, 0), (0, 1), (0, 2), (1, 0), (1, 2), (2, 0), (2, 2), (3, 0)]
        )
        assert patched == rebuilt
        assert graph_fingerprint(patched) == graph_fingerprint(rebuilt)

    def test_preserves_name_and_sizes(self):
        graph = BipartiteGraph(5, 6, [(0, 0), (4, 5)], name="stream-me")
        patched = apply_batch(graph, EdgeBatch.from_lists(inserts=[(2, 3)]))
        assert patched.name == "stream-me"
        assert (patched.n_u, patched.n_v) == (5, 6)
        assert patched.n_edges == 3


@st.composite
def graph_and_batch(draw, max_u=10, max_v=10, max_edges=40, max_changes=8):
    """A random graph plus a valid insert/delete batch against it."""
    n_u = draw(st.integers(min_value=1, max_value=max_u))
    n_v = draw(st.integers(min_value=1, max_value=max_v))
    possible = [(u, v) for u in range(n_u) for v in range(n_v)]
    n_edges = draw(st.integers(min_value=0, max_value=min(max_edges, len(possible))))
    indices = draw(
        st.lists(st.integers(min_value=0, max_value=len(possible) - 1),
                 min_size=n_edges, max_size=n_edges, unique=True)
    )
    present = [possible[i] for i in indices]
    absent = [edge for i, edge in enumerate(possible) if i not in set(indices)]
    n_del = draw(st.integers(min_value=0, max_value=min(len(present), max_changes)))
    n_ins = draw(st.integers(min_value=0, max_value=min(len(absent), max_changes)))
    deletes = present[:n_del]
    inserts = absent[:n_ins]
    return BipartiteGraph(n_u, n_v, present), EdgeBatch.from_lists(inserts or None, deletes or None)


@settings(max_examples=60, deadline=None)
@given(case=graph_and_batch())
def test_patched_csr_is_bit_identical_to_rebuild(case):
    graph, batch = case
    patched = apply_batch(graph, batch)
    deleted = set(map(tuple, batch.deletes.tolist()))
    edges = [edge for edge in map(tuple, graph.edge_array().tolist()) if edge not in deleted]
    edges.extend(map(tuple, batch.inserts.tolist()))
    rebuilt = BipartiteGraph(graph.n_u, graph.n_v, edges)
    assert patched == rebuilt
    # Both CSR directions, not just the U side compared by __eq__.
    for side in ("U", "V"):
        for patched_array, rebuilt_array in zip(patched.csr(side), rebuilt.csr(side)):
            assert np.array_equal(patched_array, rebuilt_array)
    assert graph_fingerprint(patched) == graph_fingerprint(rebuilt)
