"""Bounded tip-number repair: exactness against from-scratch peeling.

The centerpiece is the property test the streaming engine is gated on: a
random interleaving of insert/delete batches, repaired incrementally batch
by batch, must end with tip numbers bit-identical to peeling the final
graph from scratch — for both peel kernels, at every intermediate step.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.butterfly.counting import count_per_vertex
from repro.datasets.generators import planted_blocks
from repro.graph.bipartite import BipartiteGraph
from repro.peeling.bup import bup_decomposition
from repro.streaming import (
    EdgeBatch,
    StreamingConfig,
    apply_update,
    butterfly_closure,
)


def _decomposed(graph):
    counts = count_per_vertex(graph)
    result = bup_decomposition(graph, "U", counts=counts)
    return result.tip_numbers, result.initial_butterflies, counts.v_counts


class TestButterflyClosure:
    def test_covers_block_and_stops_at_component_boundary(self):
        graph = planted_blocks(20, 16, [(6, 5), (6, 5)], block_density=1.0, seed=1)
        region, _ = butterfly_closure(graph, "U", np.asarray([0]), np.ones(20, bool))
        assert region.tolist() == list(range(6))

    def test_mask_restricts_expansion(self):
        graph = planted_blocks(12, 10, [(6, 5)], block_density=1.0, seed=1)
        mask = np.zeros(12, bool)
        mask[:3] = True
        region, _ = butterfly_closure(graph, "U", np.asarray([0]), mask)
        assert region.tolist() == [0, 1, 2]

    def test_budget_abort(self):
        graph = planted_blocks(12, 10, [(6, 5)], block_density=1.0, seed=1)
        work = graph.wedge_work_per_vertex("U")
        region, _ = butterfly_closure(
            graph, "U", np.asarray([0]), np.ones(12, bool), work=work, work_budget=1,
        )
        assert region is None


class TestApplyUpdateModes:
    def test_empty_batch_is_clean(self):
        graph = planted_blocks(12, 10, [(5, 4)], background_edges=6, seed=3)
        tips, butterflies, center = _decomposed(graph)
        result = apply_update(graph, "U", tips, butterflies, EdgeBatch())
        assert result.mode == "clean"
        assert np.array_equal(result.tip_numbers, tips)

    def test_butterfly_free_churn_is_clean(self):
        graph = BipartiteGraph(6, 6, [(0, 0), (1, 1), (2, 2), (3, 3)])
        tips, butterflies, center = _decomposed(graph)
        batch = EdgeBatch.from_lists(inserts=[(4, 4)], deletes=[(3, 3)])
        result = apply_update(graph, "U", tips, butterflies, batch)
        assert result.mode == "clean"
        assert result.n_dirty == 0
        fresh = bup_decomposition(result.graph, "U")
        assert np.array_equal(result.tip_numbers, fresh.tip_numbers)

    def test_local_update_repairs_incrementally(self):
        graph = planted_blocks(40, 30, [(8, 6), (8, 6), (8, 6)], block_density=1.0, seed=2)
        tips, butterflies, center = _decomposed(graph)
        batch = EdgeBatch.from_lists(deletes=[(0, 0)])
        result = apply_update(graph, "U", tips, butterflies, batch,
                              config=StreamingConfig(full_algorithm="bup"))
        assert result.mode == "incremental"
        # Only the touched block re-peels; the other two blocks are frozen.
        assert result.n_repeeled <= 8
        fresh = bup_decomposition(result.graph, "U")
        assert np.array_equal(result.tip_numbers, fresh.tip_numbers)

    def test_damage_threshold_forces_full(self):
        graph = planted_blocks(12, 10, [(6, 5)], block_density=1.0, seed=2)
        tips, butterflies, center = _decomposed(graph)
        batch = EdgeBatch.from_lists(deletes=[(0, 0)])
        result = apply_update(
            graph, "U", tips, butterflies, batch,
            center_butterflies=center,
            config=StreamingConfig(damage_threshold=0.0, full_algorithm="bup"),
        )
        assert result.mode == "full"
        fresh = bup_decomposition(result.graph, "U")
        assert np.array_equal(result.tip_numbers, fresh.tip_numbers)
        assert np.array_equal(result.center_butterflies,
                              count_per_vertex(result.graph).v_counts)

    def test_v_side_decomposition(self):
        graph = planted_blocks(14, 12, [(6, 5)], background_edges=8, seed=4)
        counts = count_per_vertex(graph)
        base = bup_decomposition(graph, "V", counts=counts)
        batch = EdgeBatch.from_lists(deletes=[tuple(graph.edge_array()[0])])
        result = apply_update(graph, "V", base.tip_numbers, base.initial_butterflies,
                              batch, center_butterflies=counts.u_counts,
                              config=StreamingConfig(full_algorithm="bup"))
        fresh = bup_decomposition(result.graph, "V")
        assert np.array_equal(result.tip_numbers, fresh.tip_numbers)
        assert np.array_equal(result.butterflies, fresh.initial_butterflies)

    def test_mismatched_state_rejected(self):
        graph = planted_blocks(12, 10, [(5, 4)], seed=3)
        tips, butterflies, _ = _decomposed(graph)
        from repro.errors import DecompositionError

        with pytest.raises(DecompositionError, match="do not match side"):
            apply_update(graph, "U", tips[:-1], butterflies, EdgeBatch())


@st.composite
def update_stream(draw, max_u=9, max_v=9, max_batches=4, max_changes=5):
    """A random starting graph plus a random interleaving of edge batches.

    Batches are materialised lazily against the evolving edge set so every
    insert/delete is valid at its point in the stream.
    """
    n_u = draw(st.integers(min_value=2, max_value=max_u))
    n_v = draw(st.integers(min_value=2, max_value=max_v))
    possible = [(u, v) for u in range(n_u) for v in range(n_v)]
    n_edges = draw(st.integers(min_value=0, max_value=min(40, len(possible))))
    indices = draw(
        st.lists(st.integers(min_value=0, max_value=len(possible) - 1),
                 min_size=n_edges, max_size=n_edges, unique=True)
    )
    present = {possible[i] for i in indices}
    start_edges = sorted(present)

    batches = []
    n_batches = draw(st.integers(min_value=1, max_value=max_batches))
    for _ in range(n_batches):
        absent = sorted(set(possible) - present)
        n_ins = draw(st.integers(min_value=0, max_value=min(len(absent), max_changes)))
        ins_idx = draw(
            st.lists(st.integers(min_value=0, max_value=max(len(absent) - 1, 0)),
                     min_size=n_ins, max_size=n_ins, unique=True)
        ) if absent else []
        inserts = [absent[i] for i in ins_idx]
        removable = sorted(present)
        n_del = draw(st.integers(min_value=0, max_value=min(len(removable), max_changes)))
        del_idx = draw(
            st.lists(st.integers(min_value=0, max_value=max(len(removable) - 1, 0)),
                     min_size=n_del, max_size=n_del, unique=True)
        ) if removable else []
        deletes = [removable[i] for i in del_idx]
        batches.append((inserts, deletes))
        present = (present | set(inserts)) - set(deletes)
    return n_u, n_v, start_edges, batches


@settings(max_examples=40, deadline=None)
@given(stream=update_stream(), damage_threshold=st.sampled_from([0.0, 0.3, 1.0]))
@pytest.mark.parametrize("peel_kernel", ["batched", "reference"])
def test_interleaved_batches_match_scratch_peel(stream, damage_threshold, peel_kernel):
    """The ISSUE-gated property: incremental repair == from-scratch peel.

    Every intermediate state of a random insert/delete interleaving must
    carry tip numbers and butterfly counts (both sides) bit-identical to a
    from-scratch decomposition of the graph at that point, whatever the
    peel kernel and however eagerly the damage threshold forces fallback.
    """
    n_u, n_v, start_edges, batches = stream
    graph = BipartiteGraph(n_u, n_v, start_edges)
    tips, butterflies, center = _decomposed(graph)
    config = StreamingConfig(
        damage_threshold=damage_threshold,
        peel_kernel=peel_kernel,
        full_algorithm="bup",
    )
    for inserts, deletes in batches:
        batch = EdgeBatch.from_lists(inserts or None, deletes or None)
        result = apply_update(graph, "U", tips, butterflies, batch,
                              center_butterflies=center, config=config)
        graph = result.graph
        tips, butterflies, center = (
            result.tip_numbers, result.butterflies, result.center_butterflies,
        )
        fresh_counts = count_per_vertex(graph)
        fresh = bup_decomposition(graph, "U", counts=fresh_counts,
                                  peel_kernel=peel_kernel)
        assert np.array_equal(tips, fresh.tip_numbers)
        assert np.array_equal(butterflies, fresh.initial_butterflies)
        assert np.array_equal(center, fresh_counts.v_counts)
