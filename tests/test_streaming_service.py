"""Serving-layer integration of the streaming update engine.

Covers ``TipIndex.apply_delta``, the ``POST /update`` endpoint (offline
and over HTTP), the atomic cache swap, the persisted staleness counters
surfaced by ``/stats``, and the ``repro update`` CLI command.
"""

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.core.receipt import tip_decomposition
from repro.datasets.generators import planted_blocks
from repro.errors import ServiceError
from repro.graph.bipartite import BipartiteGraph
from repro.service.artifacts import read_manifest
from repro.service.build import build_index_artifact
from repro.service.server import ENDPOINTS, TipService, create_server


@pytest.fixture
def graph():
    return planted_blocks(40, 30, [(8, 6), (8, 6), (7, 5)], background_edges=25, seed=6)


@pytest.fixture
def artifact(tmp_path, graph):
    path = tmp_path / "stream.tipidx"
    build_index_artifact(graph, path, side="U", n_partitions=6)
    return path


def _fresh(graph):
    return tip_decomposition(graph, "U", algorithm="receipt", n_partitions=6)


def _updated_graph(graph, inserts, deletes):
    deleted = {tuple(edge) for edge in deletes}
    edges = [e for e in map(tuple, graph.edge_array().tolist()) if e not in deleted]
    return BipartiteGraph(graph.n_u, graph.n_v, edges + [tuple(e) for e in inserts])


class TestApplyDelta:
    def test_returns_exact_repaired_index(self, artifact, graph):
        service = TipService([artifact])
        index = service.index_for()
        deletes = [tuple(graph.edge_array()[0])]
        repaired, update = index.apply_delta(inserts=[[39, 29]], deletes=deletes)
        fresh = _fresh(_updated_graph(graph, [[39, 29]], deletes))
        assert np.array_equal(repaired.tip_numbers, fresh.tip_numbers)
        assert np.array_equal(np.asarray(repaired.initial_butterflies),
                              fresh.initial_butterflies)
        assert repaired.fingerprint == ""  # not persisted yet
        # The original index is untouched (readers keep their snapshot).
        assert index.graph.n_edges == graph.n_edges
        assert update.mode in ("clean", "incremental", "full")

    def test_requires_graph_arrays(self):
        from repro.service.index import TipIndex, level_csr, sorted_order

        tips = np.asarray([0, 1, 2])
        order = sorted_order(tips)
        values, offsets = level_csr(tips[order])
        bare = TipIndex(tip_numbers=tips, order=order, level_values=values,
                        level_offsets=offsets)
        with pytest.raises(ServiceError, match="graph arrays"):
            bare.apply_delta(inserts=[[0, 0]])

    def test_center_counts_round_trip_through_artifact(self, artifact):
        service = TipService([artifact])
        index = service.index_for()
        assert index.center_butterflies is not None


class TestUpdateEndpointOffline:
    def test_update_persists_and_swaps_cache(self, artifact, graph):
        service = TipService([artifact])
        before = read_manifest(artifact)
        deletes = [list(map(int, graph.edge_array()[0]))]
        payload = service.handle("/update", {}, {"insert": [[39, 29]], "delete": deletes})
        after = read_manifest(artifact)
        assert payload["fingerprint"] == after.fingerprint
        assert payload["previous_fingerprint"] == before.fingerprint
        assert after.fingerprint != before.fingerprint
        # The repaired index is already cached under the new fingerprint...
        assert service.cache.peek(after.fingerprint)
        assert not service.cache.peek(before.fingerprint)
        # ...and serves the refreshed graph without a reload.
        assert service.index_for().graph.n_edges == graph.n_edges
        # Persisted staleness counters advanced.
        assert after.streaming["updates_applied"] == 1
        assert after.streaming["edges_inserted"] == 1
        assert after.streaming["edges_deleted"] == 1
        assert after.streaming["base_fingerprint"] == before.fingerprint

    def test_served_answers_match_scratch_after_updates(self, artifact, graph):
        service = TipService([artifact])
        current = graph
        rng = np.random.default_rng(3)
        for step in range(3):
            edges = current.edge_array()
            delete = edges[rng.integers(edges.shape[0])]
            insert = [int(rng.integers(current.n_u)), int(rng.integers(current.n_v))]
            if current.has_edge(*insert) or (insert[0] == int(delete[0])
                                             and insert[1] == int(delete[1])):
                insert = None
            body = {"delete": [list(map(int, delete))]}
            if insert:
                body["insert"] = [insert]
            service.handle("/update", {}, body)
            current = _updated_graph(current, body.get("insert", []), body["delete"])
            served = service.handle(
                "/theta/batch", {"vertices": ",".join(map(str, range(current.n_u)))}
            )
            fresh = _fresh(current)
            assert np.asarray(served["thetas"]).tolist() == fresh.tip_numbers.tolist()

    def test_update_requires_body_and_edges(self, artifact):
        service = TipService([artifact])
        with pytest.raises(ServiceError) as excinfo:
            service.handle("/update", {}, None)
        assert excinfo.value.status == 405
        with pytest.raises(ServiceError, match="insert.*delete|carry"):
            service.handle("/update", {}, {})
        with pytest.raises(ServiceError, match="pairs"):
            service.handle("/update", {}, {"insert": [[1, 2, 3]]})
        with pytest.raises(ServiceError, match="pairs"):
            service.handle("/update", {}, {"insert": [[1, "x"]]})
        # JSON integers are unbounded; out-of-int64 ids must answer 400
        # instead of overflowing inside numpy.
        with pytest.raises(ServiceError, match="int64"):
            service.handle("/update", {}, {"insert": [[2**70, 0]]})

    def test_conflicting_batch_is_409_and_leaves_artifact_alone(self, artifact):
        service = TipService([artifact])
        before = read_manifest(artifact)
        with pytest.raises(ServiceError) as excinfo:
            service.handle("/update", {}, {"delete": [[0, 29]]})
        assert excinfo.value.status == 409
        assert read_manifest(artifact).fingerprint == before.fingerprint
        assert read_manifest(artifact).streaming == {}

    def test_stats_reports_schema_version_and_fingerprints(self, artifact, graph):
        service = TipService([artifact])
        stats = service.handle("/stats", {})
        summary = next(iter(stats["artifacts"].values()))
        manifest = read_manifest(artifact)
        assert summary["format_version"] == manifest.format_version
        assert summary["fingerprint"] == manifest.fingerprint
        assert summary["graph_fingerprint"] == manifest.graph["fingerprint"]
        assert summary["streaming"]["updates_applied"] == 0
        service.handle("/update", {}, {"delete": [list(map(int, graph.edge_array()[0]))]})
        stats = service.handle("/stats", {})
        summary = next(iter(stats["artifacts"].values()))
        assert summary["streaming"]["updates_applied"] == 1
        assert summary["streaming"]["last_update_unix"] is not None
        assert sum(stats["updates"].values()) == 1

    def test_histogram_stats_keep_streaming_fields(self, artifact):
        service = TipService([artifact])
        stats = service.handle("/stats", {"histogram": "1"})
        summary = next(iter(stats["artifacts"].values()))
        assert "histogram" in summary
        assert "streaming" in summary and "format_version" in summary


class TestUpdateEndpointHttp:
    def test_post_update_and_stats(self, artifact, graph):
        server = create_server([artifact], port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://{server.server_address[0]}:{server.server_address[1]}"
        try:
            body = json.dumps(
                {"delete": [list(map(int, graph.edge_array()[0]))]}
            ).encode()
            request = urllib.request.Request(
                base + "/update", data=body,
                headers={"Content-Type": "application/json"}, method="POST",
            )
            with urllib.request.urlopen(request, timeout=30) as response:
                payload = json.loads(response.read())
            assert response.status == 200
            assert payload["deleted"] == 1
            assert payload["mode"] in ("clean", "incremental", "full")

            with urllib.request.urlopen(base + "/stats", timeout=30) as response:
                stats = json.loads(response.read())
            summary = next(iter(stats["artifacts"].values()))
            assert summary["streaming"]["updates_applied"] == 1

            # GET on the write route is rejected.
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(base + "/update", timeout=30)
            assert excinfo.value.code == 405
        finally:
            server.shutdown()
            server.server_close()

    def test_update_is_a_registered_endpoint(self):
        assert "/update" in ENDPOINTS


class TestUpdateCli:
    def test_cli_update_round_trip(self, artifact, graph, capsys):
        edge = graph.edge_array()[0]
        exit_code = cli_main([
            "update", str(artifact),
            "--insert", "39:29",
            "--delete", f"{int(edge[0])}:{int(edge[1])}",
        ])
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["inserted"] == 1 and payload["deleted"] == 1
        assert read_manifest(artifact).streaming["updates_applied"] == 1

    def test_cli_updates_file(self, artifact, graph, tmp_path, capsys):
        edge = graph.edge_array()[1]
        updates = tmp_path / "batch.json"
        updates.write_text(json.dumps({"delete": [list(map(int, edge))]}))
        assert cli_main(["update", str(artifact), "--updates-file", str(updates)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["deleted"] == 1

    def test_cli_rejects_empty_and_malformed(self, artifact, capsys):
        assert cli_main(["update", str(artifact)]) == 2
        assert "needs edges" in capsys.readouterr().err
        assert cli_main(["update", str(artifact), "--insert", "1-2"]) == 2
        assert "u:v" in capsys.readouterr().err
