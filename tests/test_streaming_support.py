"""Incremental butterfly-support maintenance vs. fresh counting."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.butterfly.counting import count_per_vertex
from repro.graph.bipartite import BipartiteGraph
from repro.streaming import EdgeBatch, apply_batch, region_butterflies, support_delta


def _graph():
    # Two butterflies sharing vertex u1, plus a pendant edge.
    edges = [(0, 0), (0, 1), (1, 0), (1, 1), (1, 2), (2, 1), (2, 2), (3, 3)]
    return BipartiteGraph(4, 4, edges)


class TestRegionButterflies:
    def test_matches_global_count_on_any_subset(self):
        graph = _graph()
        expected = count_per_vertex(graph).u_counts
        for subset in ([0], [1, 3], [0, 1, 2, 3]):
            counts, _, _, _ = region_butterflies(graph, "U", np.asarray(subset))
            assert counts.tolist() == expected[subset].tolist()

    def test_v_side_counts(self):
        graph = _graph()
        expected = count_per_vertex(graph).v_counts
        counts, _, _, _ = region_butterflies(graph, "V", np.arange(4))
        assert counts.tolist() == expected.tolist()

    def test_empty_subset(self):
        counts, keys, pairs, wedges = region_butterflies(_graph(), "U", np.zeros(0, np.int64))
        assert counts.size == keys.size == pairs.size == wedges == 0

    def test_pair_signature_carries_shared_butterflies(self):
        graph = _graph()
        counts, keys, pairs, _ = region_butterflies(graph, "U", np.asarray([1]))
        partners = (keys % graph.n_u).tolist()
        # u1 shares one butterfly with u0 and one with u2.
        assert partners == [0, 2]
        assert pairs.tolist() == [1, 1]
        assert counts.tolist() == [2]


class TestSupportDelta:
    def test_butterfly_free_insert_is_not_dirty(self):
        graph = _graph()
        batch = EdgeBatch.from_lists(inserts=[(3, 0)])
        delta = support_delta(graph, apply_batch(graph, batch), batch, "U")
        assert delta.dirty.size == 0

    def test_insert_creating_butterflies(self):
        graph = _graph()
        # u3 gains v1 and v2, closing one butterfly with u1 and one with u2.
        batch = EdgeBatch.from_lists(inserts=[(3, 1), (3, 2)])
        new_graph = apply_batch(graph, batch)
        delta = support_delta(graph, new_graph, batch, "U")
        updated = delta.apply_to(count_per_vertex(graph).u_counts)
        assert updated.tolist() == count_per_vertex(new_graph).u_counts.tolist()
        assert set(delta.dirty.tolist()) == {1, 2, 3}

    def test_delete_destroying_butterfly(self):
        graph = _graph()
        batch = EdgeBatch.from_lists(deletes=[(0, 0)])
        new_graph = apply_batch(graph, batch)
        delta = support_delta(graph, new_graph, batch, "U")
        assert set(delta.dirty.tolist()) == {0, 1}
        updated = delta.apply_to(count_per_vertex(graph).u_counts)
        assert updated.tolist() == count_per_vertex(new_graph).u_counts.tolist()


@st.composite
def graph_and_batch(draw, max_u=10, max_v=10, max_edges=45, max_changes=6):
    n_u = draw(st.integers(min_value=1, max_value=max_u))
    n_v = draw(st.integers(min_value=1, max_value=max_v))
    possible = [(u, v) for u in range(n_u) for v in range(n_v)]
    n_edges = draw(st.integers(min_value=0, max_value=min(max_edges, len(possible))))
    indices = draw(
        st.lists(st.integers(min_value=0, max_value=len(possible) - 1),
                 min_size=n_edges, max_size=n_edges, unique=True)
    )
    present = [possible[i] for i in indices]
    absent = [edge for i, edge in enumerate(possible) if i not in set(indices)]
    n_del = draw(st.integers(min_value=0, max_value=min(len(present), max_changes)))
    n_ins = draw(st.integers(min_value=0, max_value=min(len(absent), max_changes)))
    if n_del + n_ins == 0 and absent:
        n_ins = 1
    return (
        BipartiteGraph(n_u, n_v, present),
        EdgeBatch.from_lists(absent[:n_ins] or None, present[:n_del] or None),
    )


@settings(max_examples=60, deadline=None)
@given(case=graph_and_batch())
def test_incremental_counts_match_fresh_counts_both_sides(case):
    graph, batch = case
    new_graph = apply_batch(graph, batch)
    fresh_old = count_per_vertex(graph)
    fresh_new = count_per_vertex(new_graph)
    for side, old_counts, new_counts in (
        ("U", fresh_old.u_counts, fresh_new.u_counts),
        ("V", fresh_old.v_counts, fresh_new.v_counts),
    ):
        delta = support_delta(graph, new_graph, batch, side)
        assert delta.apply_to(old_counts).tolist() == new_counts.tolist()
        # Vertices outside the dirty set must not have moved.
        moved = np.flatnonzero(old_counts != new_counts)
        assert set(moved.tolist()) <= set(delta.dirty.tolist())
