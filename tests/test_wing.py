"""Unit tests for the wing decomposition (edge peeling) extension."""

import numpy as np
import pytest

from repro.butterfly.per_edge import count_per_edge
from repro.datasets.generators import random_bipartite
from repro.graph.builders import complete_bipartite, from_edge_list, star
from repro.wing.decomposition import receipt_wing_decomposition, wing_decomposition


class TestWingBup:
    def test_single_butterfly(self):
        graph = complete_bipartite(2, 2)
        result = wing_decomposition(graph)
        assert result.wing_numbers.tolist() == [1, 1, 1, 1]
        assert result.max_wing_number == 1

    def test_complete_3x3(self):
        graph = complete_bipartite(3, 3)
        result = wing_decomposition(graph)
        # Fully symmetric: every edge ends with the same wing number, and it
        # equals its butterfly count (4) because the whole graph is a 4-wing.
        assert set(result.wing_numbers.tolist()) == {4}

    def test_star_all_zero(self):
        result = wing_decomposition(star(5, center_side="V"))
        assert result.wing_numbers.sum() == 0

    def test_empty_graph(self):
        from repro.graph.builders import empty_graph

        result = wing_decomposition(empty_graph(3, 3))
        assert result.n_edges == 0

    def test_wing_bounded_by_butterfly_count(self, blocks_graph):
        counts = count_per_edge(blocks_graph)
        result = wing_decomposition(blocks_graph, counts=counts)
        assert np.all(result.wing_numbers <= counts.counts)

    def test_dense_block_has_higher_wing_numbers_than_background(self):
        from repro.datasets.generators import planted_blocks

        graph = planted_blocks(20, 15, [(6, 5)], block_density=1.0, background_edges=15, seed=3)
        result = wing_decomposition(graph)
        by_edge = result.as_dict()
        block_values = [wing for (u, v), wing in by_edge.items() if u < 6 and v < 5]
        other_values = [wing for (u, v), wing in by_edge.items() if not (u < 6 and v < 5)]
        assert min(block_values) > max(other_values, default=0)

    def test_result_metadata(self, tiny_graph):
        result = wing_decomposition(tiny_graph)
        assert result.algorithm == "wing-BUP"
        assert result.n_edges == tiny_graph.n_edges
        assert result.counters.wedges_traversed > 0
        assert result.counters.vertices_peeled == tiny_graph.n_edges


class TestReceiptWing:
    def test_matches_bup_on_fixtures(self, tiny_graph, hierarchy_graph):
        for graph in (tiny_graph, hierarchy_graph):
            reference = wing_decomposition(graph)
            two_step = receipt_wing_decomposition(graph, n_partitions=3)
            assert reference.same_wing_numbers(two_step), graph.name

    def test_matches_bup_on_random_graphs(self):
        rng = np.random.default_rng(17)
        for _ in range(12):
            n_u, n_v = int(rng.integers(3, 12)), int(rng.integers(3, 12))
            graph = random_bipartite(
                n_u, n_v, int(rng.integers(4, min(40, n_u * n_v + 1))),
                seed=int(rng.integers(1_000_000)),
            )
            reference = wing_decomposition(graph)
            for n_partitions in (1, 2, 4):
                two_step = receipt_wing_decomposition(graph, n_partitions=n_partitions)
                assert reference.same_wing_numbers(two_step)

    def test_partition_metadata(self, tiny_graph):
        result = receipt_wing_decomposition(tiny_graph, n_partitions=3)
        assert result.algorithm == "wing-RECEIPT"
        assert sum(result.extra["partition_sizes"]) == tiny_graph.n_edges
        bounds = result.extra["bounds"]
        assert bounds[0] == 0
        assert all(b1 < b2 for b1, b2 in zip(bounds, bounds[1:]))

    def test_empty_graph(self):
        from repro.graph.builders import empty_graph

        result = receipt_wing_decomposition(empty_graph(2, 2))
        assert result.n_edges == 0

    def test_wing_number_dict(self, tiny_graph):
        result = receipt_wing_decomposition(tiny_graph, n_partitions=2)
        mapping = result.as_dict()
        assert len(mapping) == tiny_graph.n_edges
        assert all(wing >= 0 for wing in mapping.values())
